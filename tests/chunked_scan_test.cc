// Chunked-storage and morsel-scan tests: chunk-layout invariants under
// AppendRows / SetChunkRows / DeepCopy, zone-map maintenance and
// skipping correctness (including dictionary-encoded columns), and a
// randomized differential sweep asserting that the scalar, vectorized,
// and morsel-parallel scan paths — with and without zone-map skipping —
// produce byte-identical TopKLists at chunk boundaries the small-table
// suites never cross. Plus the ExecStats reset contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/run_budget.h"
#include "common/thread_pool.h"
#include "engine/atom_cache.h"
#include "engine/exec_context.h"
#include "engine/executor.h"
#include "storage/table.h"
#include "storage/table_view.h"

namespace paleo {
namespace {

// ---- Randomized workload generation (mirrors vectorized_exec_test) ------

Schema DiffSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"s1", DataType::kString, FieldRole::kDimension},
      {"s2", DataType::kString, FieldRole::kDimension},
      {"d1", DataType::kInt64, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
      {"w", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

const char* kStates[] = {"CA", "NY", "TX", "WA"};

Table RandomTable(Rng& rng, size_t num_rows) {
  Table t(DiffSchema());
  const int num_entities = static_cast<int>(rng.UniformInt(3, 40));
  for (size_t r = 0; r < num_rows; ++r) {
    std::string e = "e" + std::to_string(rng.UniformInt(0, num_entities - 1));
    std::string s1 = kStates[rng.Uniform(4)];
    std::string s2 = "g" + std::to_string(rng.Uniform(8));
    EXPECT_TRUE(t.AppendRow({Value::String(e), Value::String(s1),
                             Value::String(s2),
                             Value::Int64(rng.UniformInt(0, 10)),
                             Value::Int64(rng.UniformInt(-100, 100)),
                             Value::Double(rng.UniformDouble(0.0, 100.0))})
                    .ok());
  }
  return t;
}

TopKQuery RandomQuery(Rng& rng) {
  TopKQuery q;
  std::vector<AtomicPredicate> atoms;
  const int num_atoms = static_cast<int>(rng.Uniform(4));
  bool used[3] = {false, false, false};
  for (int i = 0; i < num_atoms; ++i) {
    const int pick = static_cast<int>(rng.Uniform(3));
    if (used[pick]) continue;
    used[pick] = true;
    switch (pick) {
      case 0:
        atoms.emplace_back(1, rng.Uniform(8) == 0
                                  ? Value::String("ZZ")
                                  : Value::String(kStates[rng.Uniform(4)]));
        break;
      case 1:
        atoms.emplace_back(
            2, Value::String("g" + std::to_string(rng.Uniform(8))));
        break;
      case 2:
        if (rng.Uniform(2) == 0) {
          atoms.emplace_back(3, Value::Int64(rng.UniformInt(0, 10)));
        } else {
          const int64_t lo = rng.UniformInt(0, 8);
          atoms.push_back(AtomicPredicate::Range(
              3, Value::Int64(lo), Value::Int64(rng.UniformInt(lo, 10))));
        }
        break;
    }
  }
  q.predicate = Predicate(std::move(atoms));
  switch (rng.Uniform(4)) {
    case 0: q.expr = RankExpr::Column(4); break;
    case 1: q.expr = RankExpr::Column(5); break;
    case 2: q.expr = RankExpr::Add(4, 5); break;
    default: q.expr = RankExpr::Mul(4, 5); break;
  }
  const AggFn aggs[] = {AggFn::kMax, AggFn::kMin, AggFn::kSum,
                        AggFn::kAvg, AggFn::kCount, AggFn::kNone};
  q.agg = aggs[rng.Uniform(6)];
  q.order = rng.Uniform(2) == 0 ? SortOrder::kDesc : SortOrder::kAsc;
  q.k = static_cast<int>(rng.UniformInt(1, 15));
  return q;
}

// ---- Chunk layout -------------------------------------------------------

TEST(ChunkLayoutTest, TilesRowsWithShortLastChunk) {
  Rng rng(1);
  Table t = RandomTable(rng, 300);
  t.SetChunkRows(128);
  ASSERT_EQ(t.num_chunks(), 3u);
  EXPECT_EQ(t.chunk(0).begin_row, 0u);
  EXPECT_EQ(t.chunk(0).end_row, 128u);
  EXPECT_EQ(t.chunk(1).begin_row, 128u);
  EXPECT_EQ(t.chunk(1).end_row, 256u);
  EXPECT_EQ(t.chunk(2).begin_row, 256u);
  EXPECT_EQ(t.chunk(2).end_row, 300u);  // short last chunk
  for (const Chunk& ch : t.chunks()) {
    EXPECT_EQ(ch.zones.size(), t.num_columns());
    EXPECT_GT(ch.num_rows(), 0u);
  }
}

TEST(ChunkLayoutTest, ClampsToBitmapWordMultiples) {
  Rng rng(2);
  Table t = RandomTable(rng, 70);
  t.SetChunkRows(1);  // clamped up to 64
  EXPECT_EQ(t.chunk_rows(), 64u);
  EXPECT_EQ(t.num_chunks(), 2u);
  t.SetChunkRows(100);  // clamped down to 64
  EXPECT_EQ(t.chunk_rows(), 64u);
}

TEST(ChunkLayoutTest, SingleRowAndEmptyTables) {
  Table empty(DiffSchema());
  EXPECT_EQ(empty.num_chunks(), 0u);
  Rng rng(3);
  Table one = RandomTable(rng, 1);
  ASSERT_EQ(one.num_chunks(), 1u);
  EXPECT_EQ(one.chunk(0).num_rows(), 1u);
}

TEST(ChunkLayoutTest, RechunkingIsIdempotentOnSameValue) {
  Rng rng(4);
  Table t = RandomTable(rng, 200);
  t.SetChunkRows(64);
  const uint64_t epoch = t.epoch();
  t.SetChunkRows(64);  // same layout: no rebuild, no epoch bump
  EXPECT_EQ(t.epoch(), epoch);
  t.SetChunkRows(128);  // chunk indices change meaning: new epoch
  EXPECT_NE(t.epoch(), epoch);
}

TEST(ChunkLayoutTest, DeepCopyPreservesChunksAndZones) {
  Rng rng(5);
  Table t = RandomTable(rng, 150);
  t.SetChunkRows(64);
  Table copy = t.DeepCopy();
  EXPECT_EQ(copy.epoch(), t.epoch());
  ASSERT_EQ(copy.num_chunks(), t.num_chunks());
  for (size_t c = 0; c < t.num_chunks(); ++c) {
    EXPECT_EQ(copy.chunk(c).begin_row, t.chunk(c).begin_row);
    EXPECT_EQ(copy.chunk(c).end_row, t.chunk(c).end_row);
    for (size_t i = 0; i < static_cast<size_t>(t.num_columns()); ++i) {
      EXPECT_TRUE(copy.chunk(c).zones[i] == t.chunk(c).zones[i]);
    }
  }
}

// ---- Zone-map correctness -----------------------------------------------

TEST(ZoneMapTest, TracksIntAndDoubleExtremes) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"i", DataType::kInt64, FieldRole::kDimension},
      {"d", DataType::kDouble, FieldRole::kMeasure},
  });
  ASSERT_TRUE(schema.ok());
  Table t(*schema, /*chunk_rows=*/64);
  for (int r = 0; r < 130; ++r) {
    ASSERT_TRUE(t.AppendRow({Value::String("e" + std::to_string(r % 5)),
                             Value::Int64(r), Value::Double(r * 0.5)})
                    .ok());
  }
  ASSERT_EQ(t.num_chunks(), 3u);
  EXPECT_EQ(t.chunk(0).zones[1].int_min, 0);
  EXPECT_EQ(t.chunk(0).zones[1].int_max, 63);
  EXPECT_EQ(t.chunk(1).zones[1].int_min, 64);
  EXPECT_EQ(t.chunk(1).zones[1].int_max, 127);
  EXPECT_EQ(t.chunk(2).zones[1].int_min, 128);
  EXPECT_EQ(t.chunk(2).zones[1].int_max, 129);
  EXPECT_DOUBLE_EQ(t.chunk(1).zones[2].double_min, 32.0);
  EXPECT_DOUBLE_EQ(t.chunk(1).zones[2].double_max, 63.5);
  EXPECT_FALSE(t.chunk(0).zones[0].empty);  // dict column tracked too
}

TEST(ZoneMapTest, DictionaryZonesSkipOnlyValueFreeChunks) {
  // Dictionary codes are insertion-ordered: rows are appended in state
  // blocks, so each chunk's code range covers exactly the states it
  // holds and an equality atom for a state outside the block is
  // refutable from the zone alone.
  Rng rng(6);
  Table t(DiffSchema(), /*chunk_rows=*/64);
  for (int block = 0; block < 4; ++block) {
    for (int r = 0; r < 64; ++r) {
      ASSERT_TRUE(t.AppendRow({Value::String("e" + std::to_string(r % 7)),
                               Value::String(kStates[block]),
                               Value::String("g1"), Value::Int64(block),
                               Value::Int64(rng.UniformInt(-100, 100)),
                               Value::Double(rng.UniformDouble(0.0, 1.0))})
                      .ok());
    }
  }
  ASSERT_EQ(t.num_chunks(), 4u);

  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("TX"));  // block 2 only
  q.expr = RankExpr::Column(4);
  q.agg = AggFn::kSum;
  q.k = 5;
  auto skipping = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(skipping.ok());
  EXPECT_EQ(ex.stats().chunks_skipped.load(), 3);
  EXPECT_EQ(ex.stats().morsels.load(), 1);
  EXPECT_EQ(ex.stats().rows_scanned.load(), 64);

  Executor ref;
  auto full = ref.Execute(t, q, ExecContext{.zone_map_skipping = false});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(ref.stats().chunks_skipped.load(), 0);
  EXPECT_EQ(ref.stats().rows_scanned.load(), 256);
  EXPECT_TRUE(*skipping == *full);

  // A state no row carries refutes every chunk: empty result, zero
  // rows touched.
  ex.ResetStats();
  q.predicate = Predicate::Atom(1, Value::String("ZZ"));
  auto none = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(ex.stats().chunks_skipped.load(), 4);
  EXPECT_EQ(ex.stats().rows_scanned.load(), 0);
}

TEST(ZoneMapTest, CountMatchingSkipsRefutedChunks) {
  Rng rng(7);
  Table t(DiffSchema(), /*chunk_rows=*/64);
  for (int block = 0; block < 3; ++block) {
    for (int r = 0; r < 64; ++r) {
      ASSERT_TRUE(t.AppendRow({Value::String("e1"),
                               Value::String(kStates[block]),
                               Value::String("g1"), Value::Int64(block),
                               Value::Int64(1), Value::Double(1.0)})
                      .ok());
    }
  }
  Executor ex;
  EXPECT_EQ(ex.CountMatching(t, Predicate::Atom(3, Value::Int64(1)),
                             ExecContext{}),
            64u);
  EXPECT_EQ(ex.stats().chunks_skipped.load(), 2);
  EXPECT_EQ(ex.stats().morsels.load(), 1);
}

// ---- Differential sweep -------------------------------------------------

// The tentpole acceptance sweep: every full-scan mode must reproduce
// the sequential scalar no-skip reference byte-for-byte, across table
// sizes that are not multiples of chunk_rows, with single-chunk and
// many-chunk layouts, sequentially and morsel-parallel.
TEST(ChunkedScanTest, DifferentialScalarVsVectorizedVsMorselSweep) {
  Rng rng(20260809);
  ThreadPool pool(4);
  int workloads = 0;
  for (int ti = 0; ti < 40; ++ti) {
    const size_t sizes[] = {1, 63, 64, 65, 129, 500, 2047, 2048, 2049};
    const size_t chunk_sizes[] = {64, 128, 256};
    Table t = RandomTable(rng, sizes[rng.Uniform(9)]);
    t.SetChunkRows(chunk_sizes[rng.Uniform(3)]);
    AtomSelectionCache cache(static_cast<size_t>(4) << 20);

    Executor scalar;
    scalar.SetVectorized(false);
    Executor vec;
    for (int qi = 0; qi < 3; ++qi) {
      TopKQuery q = RandomQuery(rng);
      // Reference: sequential scalar, no zone skipping, no cache.
      auto ref = scalar.Execute(t, q,
                                ExecContext{.zone_map_skipping = false});
      ASSERT_TRUE(ref.ok());
      const ExecContext variants[] = {
          {},                                               // vectorized seq
          {.zone_map_skipping = false},                     // no skipping
          {.cache = &cache},                                // cached
          {.pool = &pool, .scan_threads = 4},               // morsel-parallel
          {.cache = &cache, .pool = &pool, .scan_threads = 4},
          {.pool = &pool, .scan_threads = 4,
           .zone_map_skipping = false},
          {.pool = &pool, .scan_threads = 2},
      };
      for (const ExecContext& ctx : variants) {
        auto got = vec.Execute(t, q, ctx);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(*ref == *got)
            << "workload " << workloads << " threads=" << ctx.scan_threads
            << " skip=" << ctx.zone_map_skipping;
        auto got_scalar = scalar.Execute(t, q, ctx);
        ASSERT_TRUE(got_scalar.ok());
        EXPECT_TRUE(*ref == *got_scalar) << "workload " << workloads;
      }
      const size_t ref_count = scalar.CountMatching(
          t, q.predicate, ExecContext{.zone_map_skipping = false});
      EXPECT_EQ(ref_count,
                vec.CountMatching(t, q.predicate, ExecContext{}));
      EXPECT_EQ(ref_count,
                vec.CountMatching(t, q.predicate,
                                  ExecContext{.cache = &cache,
                                              .pool = &pool,
                                              .scan_threads = 4}));
      ++workloads;
    }
  }
  EXPECT_GE(workloads, 100);
}

TEST(ChunkedScanTest, MorselScanAccountsSkippedAndProcessedChunks) {
  Rng rng(8);
  ThreadPool pool(4);
  Table t = RandomTable(rng, 1000);
  t.SetChunkRows(64);
  const int64_t chunks = static_cast<int64_t>(t.num_chunks());
  Executor ex;
  TopKQuery q = RandomQuery(rng);
  q.predicate = Predicate();  // unselective: nothing skippable
  auto r =
      ex.Execute(t, q, ExecContext{.pool = &pool, .scan_threads = 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ex.stats().morsels.load() + ex.stats().chunks_skipped.load(),
            chunks);
  EXPECT_EQ(ex.stats().chunks_skipped.load(), 0);
  EXPECT_EQ(ex.stats().rows_scanned.load(), 1000);
}

TEST(ChunkedScanTest, ParallelScanHonoursPreTrippedBudget) {
  Rng rng(9);
  ThreadPool pool(4);
  Table t = RandomTable(rng, 2000);
  t.SetChunkRows(64);
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  Executor ex;
  TopKQuery q = RandomQuery(rng);
  auto r = ex.Execute(
      t, q, ExecContext{.budget = &budget, .pool = &pool, .scan_threads = 4});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
}

// ---- Stats reset contract -----------------------------------------------

// ResetStats during an in-flight Execute/CountMatching is a contract
// violation (see Executor::Stats): the executor never synchronizes the
// reset against morsel workers. The supported protocol — reset at
// quiescence, between executions — must leave exact totals.
TEST(ChunkedScanTest, ResetStatsAtQuiescenceYieldsExactTotals) {
  Rng rng(10);
  Table t = RandomTable(rng, 500);
  t.SetChunkRows(64);
  ThreadPool pool(4);
  Executor ex;
  TopKQuery q = RandomQuery(rng);
  q.predicate = Predicate();
  ASSERT_TRUE(
      ex.Execute(t, q, ExecContext{.pool = &pool, .scan_threads = 4}).ok());
  EXPECT_GT(ex.stats().rows_scanned.load(), 0);
  // All executions joined: Execute returned, so every morsel worker has
  // committed its counts. The reset is exact.
  ex.ResetStats();
  EXPECT_EQ(ex.stats().queries_executed.load(), 0);
  EXPECT_EQ(ex.stats().rows_scanned.load(), 0);
  EXPECT_EQ(ex.stats().chunks_skipped.load(), 0);
  EXPECT_EQ(ex.stats().morsels.load(), 0);
  ASSERT_TRUE(
      ex.Execute(t, q, ExecContext{.pool = &pool, .scan_threads = 4}).ok());
  EXPECT_EQ(ex.stats().queries_executed.load(), 1);
  EXPECT_EQ(ex.stats().rows_scanned.load(), 500);
}

// The deprecated positional overloads were deleted in PR 9 (their
// equivalence suite went with them); ExecContext is the only call
// shape, enforced at compile time and by the paleo_lint exec-context
// rule tree-wide.

}  // namespace
}  // namespace paleo
