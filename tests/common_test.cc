// Tests for the common runtime: Status/StatusOr, Rng, string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace paleo {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllConstructorsSetMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsInternal());
}

// ---------- StatusOr ----------

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status UseAssignOrReturn(int input, int* out) {
  PALEO_ASSIGN_OR_RETURN(int v, ParsePositive(input));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(4, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_TRUE(UseAssignOrReturn(-4, &out).IsInvalidArgument());
  EXPECT_EQ(out, 8);  // unchanged on error
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(14);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSortedAndInRange) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(100));
    uint32_t count = 1 + static_cast<uint32_t>(rng.Uniform(n));
    std::vector<uint32_t> sample = rng.SampleWithoutReplacement(n, count);
    ASSERT_EQ(sample.size(), count);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<uint32_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), count);
    for (uint32_t v : sample) EXPECT_LT(v, n);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(16);
  std::vector<uint32_t> all = rng.SampleWithoutReplacement(10, 10);
  std::vector<uint32_t> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(all, expected);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(20);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child_a.Next() == child_b.Next());
  EXPECT_LT(same, 2);
}

// ---------- string utilities ----------

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("Customer#1", "Customer"));
  EXPECT_FALSE(StartsWith("Cust", "Customer"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "file.cc"));
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
  EXPECT_EQ(ToUpper("MiXeD 42!"), "MIXED 42!");
}

TEST(StringUtilTest, FormatDoubleIntegralValues) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(-17.0), "-17");
}

TEST(StringUtilTest, FormatDoubleFractionalValues) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(5313609), "5,313,609");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringUtilTest, SqlQuote) {
  EXPECT_EQ(SqlQuote("CA"), "'CA'");
  EXPECT_EQ(SqlQuote("O'Neal"), "'O''Neal'");
  EXPECT_EQ(SqlQuote(""), "''");
}

}  // namespace
}  // namespace paleo
