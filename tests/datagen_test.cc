// Tests for the data generators: schema shapes, determinism, value
// domains, and the augmentation rules.

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/augment.h"
#include "datagen/ssb_gen.h"
#include "datagen/text_pool.h"
#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "engine/executor.h"

namespace paleo {
namespace {

TEST(TextPoolTest, VocabularySizesMatchDbgen) {
  EXPECT_EQ(TextPool::Nations().size(), 25u);
  EXPECT_EQ(TextPool::Regions().size(), 5u);
  EXPECT_EQ(TextPool::NationRegion().size(), 25u);
  EXPECT_EQ(TextPool::PartTypes().size(), 150u);
  EXPECT_EQ(TextPool::Containers().size(), 40u);
  EXPECT_EQ(TextPool::Brands().size(), 25u);
  EXPECT_EQ(TextPool::MarketSegments().size(), 5u);
  EXPECT_EQ(TextPool::OrderPriorities().size(), 5u);
  EXPECT_EQ(TextPool::ShipModes().size(), 7u);
  EXPECT_EQ(TextPool::Colors().size(), 94u);
}

TEST(TextPoolTest, PaperQueryConstantsExist) {
  // The Table 6 example queries must be expressible verbatim.
  auto contains = [](const std::vector<std::string>& pool,
                     const std::string& v) {
    return std::find(pool.begin(), pool.end(), v) != pool.end();
  };
  EXPECT_TRUE(contains(TextPool::PartTypes(), "MEDIUM POLISHED STEEL"));
  EXPECT_TRUE(contains(TextPool::Containers(), "JUMBO BAG"));
  EXPECT_TRUE(contains(TextPool::Nations(), "JAPAN"));
  EXPECT_TRUE(contains(TextPool::Nations(), "UNITED STATES"));
  EXPECT_TRUE(contains(TextPool::Regions(), "AMERICA"));
  EXPECT_TRUE(contains(TextPool::Regions(), "ASIA"));
  EXPECT_TRUE(contains(TextPool::ShipModes(), "TRUCK"));
  EXPECT_EQ(TextPool::SsbCategory(1, 4), "MFGR#14");
  EXPECT_EQ(TextPool::SsbBrand(2, 2, 21), "MFGR#2221");
}

TEST(TextPoolTest, NameFormats) {
  EXPECT_EQ(TextPool::CustomerName(17), "Customer#000000017");
  EXPECT_EQ(TextPool::SupplierName(3), "Supplier#000000003");
  EXPECT_EQ(TextPool::ClerkName(1000), "Clerk#000001000");
}

TEST(TrafficGenTest, PaperExampleReproducesTable2) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();

  // The query from the paper's introduction.
  TopKQuery q;
  q.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                Value::String("CA"));
  q.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  q.agg = AggFn::kMax;
  q.k = 5;
  Executor ex;
  auto result = ex.Execute(*table, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  EXPECT_EQ(result->entry(0), TopKEntry("Lara Ellis", 784));
  EXPECT_EQ(result->entry(1), TopKEntry("Jane O'Neal", 699));
  EXPECT_EQ(result->entry(2), TopKEntry("John Smith", 654));
  EXPECT_EQ(result->entry(3), TopKEntry("Richard Fox", 596));
  EXPECT_EQ(result->entry(4), TopKEntry("Jack Stiles", 586));
}

TEST(TrafficGenTest, GenerateShapeAndDeterminism) {
  TrafficGenOptions options;
  options.num_customers = 40;
  options.months_per_customer = 3;
  auto a = TrafficGen::Generate(options);
  auto b = TrafficGen::Generate(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_rows(), 120u);
  EXPECT_EQ(a->NumEntities(), 40u);
  // Bit-for-bit determinism.
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (int c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->GetValue(static_cast<RowId>(r), c),
                b->GetValue(static_cast<RowId>(r), c));
    }
  }
}

TEST(TrafficGenTest, RejectsInvalidOptions) {
  TrafficGenOptions options;
  options.months_per_customer = 13;
  EXPECT_TRUE(TrafficGen::Generate(options).status().IsInvalidArgument());
  options.months_per_customer = 6;
  options.num_customers = 0;
  EXPECT_TRUE(TrafficGen::Generate(options).status().IsInvalidArgument());
}

TEST(TpchGenTest, SchemaShapeMatchesPaperTable5) {
  Schema schema = TpchGen::MakeSchema();
  EXPECT_EQ(schema.num_fields(), 57);           // 57 columns
  EXPECT_EQ(schema.num_textual_columns(), 27);  // 27 textual
  EXPECT_EQ(schema.num_measure_columns(), 13);  // 13 non-key numeric
  EXPECT_EQ(schema.field(schema.entity_index()).name, "c_name");
}

TEST(TpchGenTest, GeneratesConsistentRelation) {
  TpchGenOptions options;
  options.scale_factor = 0.002;
  auto table = TpchGen::Generate(options);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(table->num_rows(), 1000u);
  EXPECT_EQ(table->NumEntities(),
            static_cast<uint32_t>(TpchGen::NumCustomers(0.002)));
  // Region is functionally determined by nation.
  const Schema& schema = table->schema();
  int nation = schema.FieldIndex("c_nation");
  int region = schema.FieldIndex("c_region");
  for (size_t r = 0; r < std::min<size_t>(table->num_rows(), 500); ++r) {
    std::string n = table->GetValue(static_cast<RowId>(r), nation).str();
    std::string reg = table->GetValue(static_cast<RowId>(r), region).str();
    auto it = std::find(TextPool::Nations().begin(),
                        TextPool::Nations().end(), n);
    ASSERT_NE(it, TextPool::Nations().end());
    size_t idx = static_cast<size_t>(it - TextPool::Nations().begin());
    EXPECT_EQ(reg, TextPool::Regions()[static_cast<size_t>(
                       TextPool::NationRegion()[idx])]);
  }
}

TEST(TpchGenTest, DeterministicAcrossRuns) {
  TpchGenOptions options;
  options.scale_factor = 0.001;
  auto a = TpchGen::Generate(options);
  auto b = TpchGen::Generate(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t r = 0; r < a->num_rows(); r += 97) {
    for (int c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->GetValue(static_cast<RowId>(r), c),
                b->GetValue(static_cast<RowId>(r), c));
    }
  }
}

TEST(TpchGenTest, RejectsNonPositiveScale) {
  TpchGenOptions options;
  options.scale_factor = 0.0;
  EXPECT_TRUE(TpchGen::Generate(options).status().IsInvalidArgument());
}

TEST(SsbGenTest, SchemaShapeMatchesPaperTable5) {
  Schema schema = SsbGen::MakeSchema();
  EXPECT_EQ(schema.num_fields(), 60);           // 60 columns
  EXPECT_EQ(schema.num_textual_columns(), 28);  // 28 textual
  EXPECT_EQ(schema.num_measure_columns(), 20);  // 20 non-key numeric
  // d_year is an Int64 *dimension*, so d_year = 1995 is minable.
  int d_year = schema.FieldIndex("d_year");
  ASSERT_GE(d_year, 0);
  EXPECT_EQ(schema.field(d_year).type, DataType::kInt64);
  EXPECT_EQ(schema.field(d_year).role, FieldRole::kDimension);
}

TEST(SsbGenTest, ManyTuplesPerEntity) {
  SsbGenOptions options;
  options.scale_factor = 0.003;
  auto table = SsbGen::Generate(options);
  ASSERT_TRUE(table.ok());
  double avg = static_cast<double>(table->num_rows()) /
               static_cast<double>(table->NumEntities());
  // SSB's salient property (Table 5): ~300 tuples per entity.
  EXPECT_GT(avg, 200.0);
  EXPECT_LT(avg, 420.0);
}

TEST(AugmentTest, AddsClonesWithPerturbedMeasures) {
  TrafficGenOptions gen_options;
  gen_options.num_customers = 10;
  gen_options.months_per_customer = 2;
  auto base = TrafficGen::Generate(gen_options);
  ASSERT_TRUE(base.ok());

  AugmentOptions options;
  options.clones_mean = 5;
  options.clones_stddev = 1;
  auto augmented = Augment(*base, options);
  ASSERT_TRUE(augmented.ok());
  // ~5 clones per entity on top of 20 original rows.
  EXPECT_GT(augmented->num_rows(), base->num_rows() + 20);
  EXPECT_LT(augmented->num_rows(), base->num_rows() + 100);
  // Entities unchanged.
  EXPECT_EQ(augmented->NumEntities(), base->NumEntities());

  // Clones perturb measures upward: v' = v + v*|m| >= v (v positive
  // here) and keep textual values from existing rows of the entity.
  const Schema& schema = base->schema();
  int minutes = schema.FieldIndex("minutes");
  int state = schema.FieldIndex("state");
  std::unordered_set<std::string> base_states;
  for (size_t r = 0; r < base->num_rows(); ++r) {
    base_states.insert(
        base->GetValue(static_cast<RowId>(r), state).str());
  }
  int64_t base_min = INT64_MAX;
  for (size_t r = 0; r < base->num_rows(); ++r) {
    base_min = std::min(base_min,
                        base->GetValue(static_cast<RowId>(r), minutes)
                            .int64());
  }
  for (size_t r = base->num_rows(); r < augmented->num_rows(); ++r) {
    EXPECT_GE(augmented->GetValue(static_cast<RowId>(r), minutes).int64(),
              base_min);
    EXPECT_TRUE(base_states.count(
        augmented->GetValue(static_cast<RowId>(r), state).str()));
  }
}

TEST(AugmentTest, OriginalRowsAreKeptVerbatim) {
  TrafficGenOptions gen_options;
  gen_options.num_customers = 5;
  auto base = TrafficGen::Generate(gen_options);
  ASSERT_TRUE(base.ok());
  AugmentOptions options;
  options.clones_mean = 2;
  options.clones_stddev = 0.5;
  auto augmented = Augment(*base, options);
  ASSERT_TRUE(augmented.ok());
  for (size_t r = 0; r < base->num_rows(); ++r) {
    for (int c = 0; c < base->num_columns(); ++c) {
      ASSERT_EQ(base->GetValue(static_cast<RowId>(r), c),
                augmented->GetValue(static_cast<RowId>(r), c));
    }
  }
}

TEST(AugmentTest, RejectsNegativeStddev) {
  auto base = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(base.ok());
  AugmentOptions options;
  options.clones_stddev = -1;
  EXPECT_TRUE(Augment(*base, options).status().IsInvalidArgument());
}

TEST(PerturbDimensionsTest, ChangesRoughlyTheConfiguredFraction) {
  TrafficGenOptions gen_options;
  gen_options.num_customers = 200;
  gen_options.months_per_customer = 5;
  auto base = TrafficGen::Generate(gen_options);
  ASSERT_TRUE(base.ok());
  PerturbOptions options;
  options.row_change_probability = 0.3;
  auto perturbed = PerturbDimensions(*base, options);
  ASSERT_TRUE(perturbed.ok());
  ASSERT_EQ(perturbed->num_rows(), base->num_rows());

  const Schema& schema = base->schema();
  size_t changed = 0;
  for (size_t r = 0; r < base->num_rows(); ++r) {
    for (int d : schema.dimension_indices()) {
      if (!(base->GetValue(static_cast<RowId>(r), d) ==
            perturbed->GetValue(static_cast<RowId>(r), d))) {
        ++changed;
        break;
      }
    }
  }
  double fraction =
      static_cast<double>(changed) / static_cast<double>(base->num_rows());
  // Some draws rewrite a value to itself, so observed < configured.
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.35);
}

TEST(PerturbDimensionsTest, MeasuresAndEntitiesUntouched) {
  auto base = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(base.ok());
  PerturbOptions options;
  options.row_change_probability = 0.5;
  auto perturbed = PerturbDimensions(*base, options);
  ASSERT_TRUE(perturbed.ok());
  const Schema& schema = base->schema();
  for (size_t r = 0; r < base->num_rows(); ++r) {
    ASSERT_EQ(base->EntityCodeAt(static_cast<RowId>(r)),
              perturbed->EntityCodeAt(static_cast<RowId>(r)));
    for (int m : schema.measure_indices()) {
      ASSERT_EQ(base->GetValue(static_cast<RowId>(r), m),
                perturbed->GetValue(static_cast<RowId>(r), m));
    }
  }
}

}  // namespace
}  // namespace paleo
