// Tests for the secondary dimension indexes and the executor's
// index-assisted path. The central property: with and without the
// index, every query produces the identical result.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "engine/executor.h"
#include "index/dimension_index.h"

namespace paleo {
namespace {

Table SmallTable() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  struct Row {
    const char* e;
    const char* state;
    int64_t year;
    int64_t v;
  };
  const Row rows[] = {
      {"a", "CA", 2020, 1}, {"b", "CA", 2021, 2}, {"c", "NY", 2020, 3},
      {"d", "CA", 2020, 4}, {"e", "TX", 2021, 5},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::String(r.e), Value::String(r.state),
                             Value::Int64(r.year), Value::Int64(r.v)})
                    .ok());
  }
  return t;
}

TEST(DimensionIndexTest, LookupPostings) {
  Table t = SmallTable();
  DimensionIndex index = DimensionIndex::Build(t);
  EXPECT_EQ(index.Lookup(1, Value::String("CA")),
            (std::vector<RowId>{0, 1, 3}));
  EXPECT_EQ(index.Lookup(2, Value::Int64(2020)),
            (std::vector<RowId>{0, 2, 3}));
  EXPECT_TRUE(index.Lookup(1, Value::String("ZZ")).empty());
  // Type mismatch: string constant against the int column.
  EXPECT_TRUE(index.Lookup(2, Value::String("2020")).empty());
  // Measure and entity columns are not indexed.
  EXPECT_TRUE(index.Lookup(3, Value::Int64(1)).empty());
  EXPECT_TRUE(index.Lookup(0, Value::String("a")).empty());
}

TEST(DimensionIndexTest, CoversChecksColumns) {
  Table t = SmallTable();
  DimensionIndex index = DimensionIndex::Build(t);
  EXPECT_TRUE(index.Covers(Predicate::Atom(1, Value::String("CA"))));
  EXPECT_TRUE(index.Covers(Predicate(
      {{1, Value::String("CA")}, {2, Value::Int64(2020)}})));
  // Measure column in the predicate: not covered.
  EXPECT_FALSE(index.Covers(Predicate::Atom(3, Value::Int64(1))));
  EXPECT_TRUE(index.Covers(Predicate()));  // vacuous
}

TEST(DimensionIndexTest, MatchIntersectsPostings) {
  Table t = SmallTable();
  DimensionIndex index = DimensionIndex::Build(t);
  Predicate p({{1, Value::String("CA")}, {2, Value::Int64(2020)}});
  EXPECT_EQ(index.Match(p), (std::vector<RowId>{0, 3}));
  Predicate none({{1, Value::String("NY")}, {2, Value::Int64(2021)}});
  EXPECT_TRUE(index.Match(none).empty());
  Predicate unknown_value({{1, Value::String("ZZ")}});
  EXPECT_TRUE(index.Match(unknown_value).empty());
}

TEST(DimensionIndexTest, MatchAgreesWithScan) {
  TrafficGenOptions gen;
  gen.num_customers = 100;
  gen.months_per_customer = 6;
  auto table = TrafficGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  DimensionIndex index = DimensionIndex::Build(*table);
  Executor scan_executor;
  Rng rng(21);
  const Schema& schema = table->schema();
  const auto& dims = schema.dimension_indices();
  for (int trial = 0; trial < 40; ++trial) {
    RowId anchor = static_cast<RowId>(
        rng.Uniform(static_cast<uint64_t>(table->num_rows())));
    int n_atoms = 1 + static_cast<int>(rng.Uniform(3));
    std::vector<AtomicPredicate> atoms;
    std::vector<uint32_t> cols = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(dims.size()),
        std::min<uint32_t>(static_cast<uint32_t>(n_atoms),
                           static_cast<uint32_t>(dims.size())));
    for (uint32_t ci : cols) {
      atoms.emplace_back(dims[ci], table->GetValue(anchor, dims[ci]));
    }
    Predicate p(std::move(atoms));
    ASSERT_TRUE(index.Covers(p));
    std::vector<RowId> via_index = index.Match(p);
    EXPECT_EQ(via_index.size(), scan_executor.CountMatching(*table, p, ExecContext{}));
    for (RowId r : via_index) {
      EXPECT_TRUE(p.Matches(*table, r));
    }
  }
}

TEST(ExecutorIndexTest, IndexAssistedResultsIdenticalToScan) {
  TpchGenOptions gen;
  gen.scale_factor = 0.002;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  DimensionIndex index = DimensionIndex::Build(*table);

  Executor with_index, without_index;
  with_index.SetDimensionIndex(&index, &*table);

  Rng rng(77);
  const Schema& schema = table->schema();
  const auto& dims = schema.dimension_indices();
  const auto& measures = schema.measure_indices();
  int assisted_before = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TopKQuery q;
    RowId anchor = static_cast<RowId>(
        rng.Uniform(static_cast<uint64_t>(table->num_rows())));
    int col = dims[static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(dims.size())))];
    q.predicate = Predicate::Atom(col, table->GetValue(anchor, col));
    q.expr = RankExpr::Column(measures[static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(measures.size())))]);
    q.agg = static_cast<AggFn>(rng.Uniform(5));
    q.k = 1 + static_cast<int>(rng.Uniform(20));
    auto fast = with_index.Execute(*table, q, ExecContext{});
    auto slow = without_index.Execute(*table, q, ExecContext{});
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_TRUE(fast->InstanceEquals(*slow))
        << q.ToSql(schema) << "\nindex:\n"
        << fast->ToString() << "scan:\n"
        << slow->ToString();
  }
  EXPECT_GT(with_index.stats().index_assisted, assisted_before);
  EXPECT_EQ(without_index.stats().index_assisted, 0);
  // The index path scans far fewer rows.
  EXPECT_LT(with_index.stats().rows_scanned,
            without_index.stats().rows_scanned / 2);
}

TEST(ExecutorIndexTest, IndexOnlyUsedForMatchingTable) {
  Table a = SmallTable();
  Table b = SmallTable();
  DimensionIndex index = DimensionIndex::Build(a);
  Executor ex;
  ex.SetDimensionIndex(&index, &a);
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("CA"));
  q.expr = RankExpr::Column(3);
  q.agg = AggFn::kMax;
  q.k = 10;
  ASSERT_TRUE(ex.Execute(a, q, ExecContext{}).ok());
  EXPECT_EQ(ex.stats().index_assisted, 1);
  // Executing against a different table must fall back to scanning.
  ASSERT_TRUE(ex.Execute(b, q, ExecContext{}).ok());
  EXPECT_EQ(ex.stats().index_assisted, 1);
}

TEST(ExecutorIndexTest, CountMatchingUsesIndex) {
  Table t = SmallTable();
  DimensionIndex index = DimensionIndex::Build(t);
  Executor ex;
  ex.SetDimensionIndex(&index, &t);
  EXPECT_EQ(ex.CountMatching(t, Predicate::Atom(1, Value::String("CA")), ExecContext{}),
            3u);
  EXPECT_EQ(ex.CountMatching(t, Predicate(), ExecContext{}), 5u);  // TRUE: scan path
}

TEST(DimensionIndexTest, MemoryUsageIsPositive) {
  Table t = SmallTable();
  DimensionIndex index = DimensionIndex::Build(t);
  EXPECT_GT(index.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace paleo
