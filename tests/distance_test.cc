// Tests for rank-distance and value-distance measures.

#include <gtest/gtest.h>

#include "stats/distance.h"

namespace paleo {
namespace {

using StrList = std::vector<std::string>;

TEST(L1DistanceTest, AlignedAndTails) {
  EXPECT_EQ(L1Distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_EQ(L1Distance({1, 2}, {2, 4}), 3.0);
  EXPECT_EQ(L1Distance({1, 2, 5}, {1, 2}), 5.0);  // tail pays |5|
  EXPECT_EQ(L1Distance({}, {3, -4}), 7.0);
}

TEST(L2DistanceTest, Euclidean) {
  EXPECT_EQ(L2Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_EQ(L2Distance({1}, {1}), 0.0);
  EXPECT_EQ(L2Distance({}, {3, 4}), 5.0);
}

TEST(NormalizedL1Test, RangeAndIdentity) {
  EXPECT_EQ(NormalizedL1({5, 5}, {5, 5}), 0.0);
  double d = NormalizedL1({10, 0}, {0, 10});
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
  EXPECT_EQ(NormalizedL1({}, {}), 0.0);
  // Completely different masses stay within [0, 1].
  EXPECT_LE(NormalizedL1({1000000}, {1}), 1.0);
}

TEST(JaccardTest, Similarity) {
  EXPECT_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_EQ(JaccardSimilarity({}, {}), 1.0);
  // Duplicates collapse to sets.
  EXPECT_EQ(JaccardSimilarity({"a", "a"}, {"a"}), 1.0);
}

TEST(FootruleTest, IdenticalListsAreZero) {
  EXPECT_EQ(FootruleTopK({"a", "b", "c"}, {"a", "b", "c"}), 0.0);
}

TEST(FootruleTest, SwapCosts) {
  // a<->b swap: each moves one position.
  EXPECT_EQ(FootruleTopK({"a", "b"}, {"b", "a"}), 2.0);
}

TEST(FootruleTest, MissingElementsUseLocationKPlus1) {
  // a at position 1 in both; x only in left (|1 - 3|... location = 3),
  // y only in right.
  double d = FootruleTopK({"a", "x"}, {"a", "y"});
  // x: |2 - 3| = 1; y: |3 - 2| = 1.
  EXPECT_EQ(d, 2.0);
}

TEST(NormalizedFootruleTest, DisjointIsOneIdenticalIsZero) {
  EXPECT_EQ(NormalizedFootrule({"a", "b"}, {"a", "b"}), 0.0);
  EXPECT_EQ(NormalizedFootrule({"a", "b"}, {"x", "y"}), 1.0);
  double mid = NormalizedFootrule({"a", "b", "c"}, {"c", "b", "a"});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(KendallTauTest, IdenticalIsZero) {
  EXPECT_EQ(KendallTauTopK({"a", "b", "c"}, {"a", "b", "c"}), 0.0);
}

TEST(KendallTauTest, FullReversalCountsAllPairs) {
  EXPECT_EQ(KendallTauTopK({"a", "b", "c"}, {"c", "b", "a"}), 3.0);
}

TEST(KendallTauTest, DisjointListsUsePenaltyParameter) {
  // Pairs within each list (penalty p) plus cross pairs (penalty 1).
  // k=2 each: 2 within-list pairs * p + 4 cross pairs * 1.
  EXPECT_EQ(KendallTauTopK({"a", "b"}, {"x", "y"}, 0.5), 5.0);
  EXPECT_EQ(KendallTauTopK({"a", "b"}, {"x", "y"}, 0.0), 4.0);
}

TEST(KendallTauTest, CaseTwoInference) {
  // Both a,b in left; only b in right -> right implies b above a.
  // Left has a above b: contradiction, penalty 1.
  EXPECT_EQ(KendallTauTopK({"a", "b"}, {"b"}, 0.0), 1.0);
  // Left has b above a: agreement, no penalty.
  EXPECT_EQ(KendallTauTopK({"b", "a"}, {"b"}, 0.0), 0.0);
}

TEST(NormalizedKendallTauTest, Bounds) {
  EXPECT_EQ(NormalizedKendallTau({"a", "b"}, {"a", "b"}), 0.0);
  EXPECT_EQ(NormalizedKendallTau({"a", "b"}, {"x", "y"}), 1.0);
  double mid = NormalizedKendallTau({"a", "b", "c"}, {"a", "c", "b"});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(EmdTest, IdenticalHistogramsAreZero) {
  Histogram a = Histogram::BuildFromValues({1, 2, 3, 4, 5}, 10);
  EXPECT_NEAR(EarthMoversDistance(a, a), 0.0, 1e-12);
}

TEST(EmdTest, ShiftedMassCostsTheShift) {
  // Unit mass at 0 vs. unit mass at 10: EMD = 10 (up to cell effects).
  Histogram a = Histogram::BuildFromValues({0.0, 0.0, 0.0}, 1);
  Histogram b = Histogram::BuildFromValues({10.0, 10.0, 10.0}, 1);
  EXPECT_NEAR(EarthMoversDistance(a, b), 10.0, 1.1);
}

TEST(EmdTest, SymmetricAndMonotone) {
  Histogram a = Histogram::BuildFromValues({0, 1, 2, 3}, 8);
  Histogram b = Histogram::BuildFromValues({5, 6, 7, 8}, 8);
  Histogram c = Histogram::BuildFromValues({50, 60, 70, 80}, 8);
  double ab = EarthMoversDistance(a, b);
  double ba = EarthMoversDistance(b, a);
  double ac = EarthMoversDistance(a, c);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GT(ac, ab);
}

TEST(EmdTest, EmptyHistogramIsZero) {
  Histogram empty = Histogram::BuildFromValues({}, 10);
  Histogram a = Histogram::BuildFromValues({1, 2}, 10);
  EXPECT_EQ(EarthMoversDistance(empty, a), 0.0);
}

}  // namespace
}  // namespace paleo
