// Tests for the EntityIndex built over the entity column.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "index/entity_index.h"

namespace paleo {
namespace {

Table SmallTable() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  const char* entities[] = {"b", "a", "b", "c", "a", "b"};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(t.AppendRow({Value::String(entities[i]),
                             Value::Int64(static_cast<int64_t>(i))})
                    .ok());
  }
  return t;
}

TEST(EntityIndexTest, LookupReturnsAscendingRowIds) {
  Table t = SmallTable();
  EntityIndex index = EntityIndex::Build(t);
  EXPECT_EQ(index.num_entities(), 3u);
  EXPECT_EQ(index.Lookup("b"), (std::vector<RowId>{0, 2, 5}));
  EXPECT_EQ(index.Lookup("a"), (std::vector<RowId>{1, 4}));
  EXPECT_EQ(index.Lookup("c"), (std::vector<RowId>{3}));
  index.VerifyInvariants();
}

TEST(EntityIndexTest, LookupMissingIsEmpty) {
  Table t = SmallTable();
  EntityIndex index = EntityIndex::Build(t);
  EXPECT_TRUE(index.Lookup("zzz").empty());
}

TEST(EntityIndexTest, LookupAllMergesAndReportsMissing) {
  Table t = SmallTable();
  EntityIndex index = EntityIndex::Build(t);
  std::vector<std::string> missing;
  std::vector<RowId> rows = index.LookupAll({"a", "c", "nope"}, &missing);
  EXPECT_EQ(rows, (std::vector<RowId>{1, 3, 4}));
  EXPECT_EQ(missing, (std::vector<std::string>{"nope"}));
}

TEST(EntityIndexTest, PostingStatistics) {
  Table t = SmallTable();
  EntityIndex index = EntityIndex::Build(t);
  EXPECT_EQ(index.MaxPostingLength(), 3u);
  EXPECT_DOUBLE_EQ(index.AvgPostingLength(), 2.0);
}

TEST(EntityIndexTest, CoversEveryRowOfALargerRelation) {
  TrafficGenOptions options;
  options.num_customers = 300;
  options.months_per_customer = 6;
  auto table = TrafficGen::Generate(options);
  ASSERT_TRUE(table.ok());
  EntityIndex index = EntityIndex::Build(*table);
  index.VerifyInvariants();

  // Every row is reachable via its entity's posting list.
  size_t total = 0;
  const Column& entities = table->entity_column();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const std::string& name = entities.StringAt(static_cast<RowId>(r));
    const std::vector<RowId>& posting = index.Lookup(name);
    EXPECT_TRUE(std::binary_search(posting.begin(), posting.end(),
                                   static_cast<RowId>(r)));
  }
  for (size_t e = 0; e < index.num_entities(); ++e) total += 0;  // no-op
  (void)total;
  EXPECT_EQ(index.num_entities(), table->NumEntities());
}

TEST(EntityIndexTest, EmptyTable) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  EntityIndex index = EntityIndex::Build(t);
  EXPECT_EQ(index.num_entities(), 0u);
  EXPECT_EQ(index.AvgPostingLength(), 0.0);
  EXPECT_TRUE(index.Lookup("x").empty());
}

}  // namespace
}  // namespace paleo
