// Executor tests: hand-checked small cases plus a property suite that
// cross-validates the columnar executor against a naive row-at-a-time
// reference evaluator on generated data.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/random.h"
#include "datagen/traffic_gen.h"
#include "engine/executor.h"

namespace paleo {
namespace {

Schema TestSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
      {"w", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Table TestTable() {
  Table t(TestSchema());
  struct Row {
    const char* e;
    const char* state;
    int64_t v;
    double w;
  };
  const Row rows[] = {
      {"a", "CA", 10, 1.0}, {"a", "CA", 30, 2.0}, {"b", "CA", 20, 3.0},
      {"b", "NY", 50, 4.0}, {"c", "CA", 25, 5.0}, {"c", "CA", 15, 6.0},
      {"d", "NY", 40, 7.0},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::String(r.e), Value::String(r.state),
                             Value::Int64(r.v), Value::Double(r.w)})
                    .ok());
  }
  return t;
}

TEST(ExecutorTest, MaxGroupByDesc) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 10;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  // max per entity: a=30, b=50, c=25, d=40.
  ASSERT_EQ(result->size(), 4u);
  EXPECT_EQ(result->entry(0), TopKEntry("b", 50));
  EXPECT_EQ(result->entry(1), TopKEntry("d", 40));
  EXPECT_EQ(result->entry(2), TopKEntry("a", 30));
  EXPECT_EQ(result->entry(3), TopKEntry("c", 25));
}

TEST(ExecutorTest, LimitTruncates) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 2;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(result->entry(0).entity, "b");
  EXPECT_EQ(result->entry(1).entity, "d");
}

TEST(ExecutorTest, PredicateFiltersBeforeAggregation) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("CA"));
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 10;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  // CA rows only: a=30, b=20, c=25; d excluded.
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->entry(0), TopKEntry("a", 30));
  EXPECT_EQ(result->entry(1), TopKEntry("c", 25));
  EXPECT_EQ(result->entry(2), TopKEntry("b", 20));
}

TEST(ExecutorTest, SumAvgCountMin) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.k = 10;

  q.agg = AggFn::kSum;
  auto sum = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->entry(0), TopKEntry("b", 70));  // 20 + 50

  q.agg = AggFn::kAvg;
  auto avg = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->entry(0), TopKEntry("d", 40));  // singleton 40 > b's 35

  q.agg = AggFn::kMin;
  auto min = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->entry(0), TopKEntry("d", 40));

  q.agg = AggFn::kCount;
  auto count = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->entry(0).value, 2.0);
}

TEST(ExecutorTest, AscendingOrder) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.order = SortOrder::kAsc;
  q.k = 2;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entry(0), TopKEntry("c", 25));
  EXPECT_EQ(result->entry(1), TopKEntry("a", 30));
}

TEST(ExecutorTest, NoAggregationRanksRowsAndAllowsDuplicates) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kNone;
  q.k = 3;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->entry(0), TopKEntry("b", 50));
  EXPECT_EQ(result->entry(1), TopKEntry("d", 40));
  EXPECT_EQ(result->entry(2), TopKEntry("a", 30));
}

TEST(ExecutorTest, TwoColumnExpressions) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Add(2, 3);
  q.agg = AggFn::kSum;
  q.k = 1;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  // b: (20+3) + (50+4) = 77.
  EXPECT_EQ(result->entry(0), TopKEntry("b", 77));
}

TEST(ExecutorTest, TieBreakByEntityNameAscending) {
  Table t(TestSchema());
  for (const char* e : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(t.AppendRow({Value::String(e), Value::String("CA"),
                             Value::Int64(7), Value::Double(1.0)})
                    .ok());
  }
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 3;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entry(0).entity, "alpha");
  EXPECT_EQ(result->entry(1).entity, "mid");
  EXPECT_EQ(result->entry(2).entity, "zeta");
}

TEST(ExecutorTest, EmptyResultWhenPredicateMatchesNothing) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("ZZ"));
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 5;
  auto result = ex.Execute(t, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ExecutorTest, ValidationErrors) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(1);  // string column as ranking criterion
  q.agg = AggFn::kMax;
  q.k = 5;
  EXPECT_TRUE(ex.Execute(t, q, ExecContext{}).status().IsTypeError());

  q.expr = RankExpr::Column(99);
  EXPECT_TRUE(ex.Execute(t, q, ExecContext{}).status().IsInvalidArgument());

  q.expr = RankExpr::Column(2);
  q.k = 0;
  EXPECT_TRUE(ex.Execute(t, q, ExecContext{}).status().IsInvalidArgument());
}

TEST(ExecutorTest, ExecuteOnRowsRestrictsScan) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 10;
  std::vector<RowId> rows = {0, 2, 4};  // a=10, b=20, c=25
  auto result = ex.ExecuteOnRows(t, rows, q, ExecContext{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->entry(0), TopKEntry("c", 25));
  EXPECT_EQ(result->entry(2), TopKEntry("a", 10));
}

TEST(ExecutorTest, StatsCountExecutionsAndRows) {
  Table t = TestTable();
  Executor ex;
  TopKQuery q;
  q.expr = RankExpr::Column(2);
  q.agg = AggFn::kMax;
  q.k = 1;
  ASSERT_TRUE(ex.Execute(t, q, ExecContext{}).ok());
  ASSERT_TRUE(ex.Execute(t, q, ExecContext{}).ok());
  EXPECT_EQ(ex.stats().queries_executed, 2);
  EXPECT_EQ(ex.stats().rows_scanned, 14);
  ex.ResetStats();
  EXPECT_EQ(ex.stats().queries_executed, 0);
}

TEST(ExecutorTest, CountMatching) {
  Table t = TestTable();
  Executor ex;
  EXPECT_EQ(ex.CountMatching(t, Predicate::Atom(1, Value::String("CA")), ExecContext{}),
            5u);
  EXPECT_EQ(ex.CountMatching(t, Predicate(), ExecContext{}), 7u);
  EXPECT_EQ(ex.CountMatching(t, Predicate::Atom(1, Value::String("ZZ")), ExecContext{}),
            0u);
}

// ---- Property tests against a naive reference evaluator ----

/// Row-at-a-time reference implementation of the query template.
TopKList NaiveExecute(const Table& table, const TopKQuery& query) {
  struct Acc {
    double sum = 0, mx = -1e300, mn = 1e300;
    int64_t count = 0;
  };
  std::vector<std::pair<double, std::string>> scored;
  if (query.agg == AggFn::kNone) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!query.predicate.Matches(table, static_cast<RowId>(r))) continue;
      scored.emplace_back(query.expr.Eval(table, static_cast<RowId>(r)),
                          table.entity_column().StringAt(
                              static_cast<RowId>(r)));
    }
  } else {
    std::map<std::string, Acc> groups;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!query.predicate.Matches(table, static_cast<RowId>(r))) continue;
      double v = query.expr.Eval(table, static_cast<RowId>(r));
      Acc& acc =
          groups[table.entity_column().StringAt(static_cast<RowId>(r))];
      acc.sum += v;
      acc.mx = std::max(acc.mx, v);
      acc.mn = std::min(acc.mn, v);
      ++acc.count;
    }
    for (const auto& [name, acc] : groups) {
      double v = 0;
      switch (query.agg) {
        case AggFn::kMax:
          v = acc.mx;
          break;
        case AggFn::kMin:
          v = acc.mn;
          break;
        case AggFn::kSum:
          v = acc.sum;
          break;
        case AggFn::kAvg:
          v = acc.sum / static_cast<double>(acc.count);
          break;
        case AggFn::kCount:
          v = static_cast<double>(acc.count);
          break;
        case AggFn::kNone:
          break;
      }
      scored.emplace_back(v, name);
    }
  }
  bool desc = query.order == SortOrder::kDesc;
  std::stable_sort(scored.begin(), scored.end(),
                   [&](const auto& a, const auto& b) {
                     if (a.first != b.first)
                       return desc ? a.first > b.first : a.first < b.first;
                     return a.second < b.second;
                   });
  if (scored.size() > static_cast<size_t>(query.k)) {
    scored.resize(static_cast<size_t>(query.k));
  }
  TopKList out;
  for (auto& [v, name] : scored) out.Append(name, v);
  return out;
}

struct CrossCheckParams {
  uint64_t seed;
  AggFn agg;
};

class ExecutorCrossCheckTest
    : public ::testing::TestWithParam<CrossCheckParams> {};

TEST_P(ExecutorCrossCheckTest, MatchesNaiveEvaluator) {
  const CrossCheckParams params = GetParam();
  TrafficGenOptions gen_options;
  gen_options.num_customers = 120;
  gen_options.months_per_customer = 5;
  gen_options.seed = params.seed;
  auto table = TrafficGen::Generate(gen_options);
  ASSERT_TRUE(table.ok());

  Executor ex;
  Rng rng(params.seed * 31 + 7);
  const Schema& schema = table->schema();
  for (int trial = 0; trial < 25; ++trial) {
    TopKQuery q;
    q.agg = params.agg;
    q.k = 1 + static_cast<int>(rng.Uniform(20));
    q.order = rng.Bernoulli(0.2) ? SortOrder::kAsc : SortOrder::kDesc;
    // Random predicate of size 0..2 anchored on a random row.
    int pred_size = static_cast<int>(rng.Uniform(3));
    RowId anchor = static_cast<RowId>(
        rng.Uniform(static_cast<uint64_t>(table->num_rows())));
    std::vector<AtomicPredicate> atoms;
    const auto& dims = schema.dimension_indices();
    for (int i = 0; i < pred_size && i < static_cast<int>(dims.size());
         ++i) {
      int col = dims[static_cast<size_t>(
          rng.Uniform(static_cast<uint64_t>(dims.size())))];
      bool duplicate = false;
      for (const auto& a : atoms) duplicate |= (a.column == col);
      if (duplicate) continue;
      atoms.emplace_back(col, table->GetValue(anchor, col));
    }
    q.predicate = Predicate(std::move(atoms));
    // Random ranking expression.
    const auto& measures = schema.measure_indices();
    int a = measures[static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(measures.size())))];
    int b = measures[static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(measures.size())))];
    switch (rng.Uniform(3)) {
      case 0:
        q.expr = RankExpr::Column(a);
        break;
      case 1:
        q.expr = a == b ? RankExpr::Column(a) : RankExpr::Add(a, b);
        break;
      default:
        q.expr = a == b ? RankExpr::Column(a) : RankExpr::Mul(a, b);
        break;
    }

    auto fast = ex.Execute(*table, q, ExecContext{});
    ASSERT_TRUE(fast.ok());
    TopKList slow = NaiveExecute(*table, q);
    EXPECT_TRUE(fast->InstanceEquals(slow))
        << "trial " << trial << "\nquery: " << q.ToSql(schema)
        << "\nfast:\n"
        << fast->ToString() << "\nslow:\n"
        << slow.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, ExecutorCrossCheckTest,
    ::testing::Values(CrossCheckParams{11, AggFn::kMax},
                      CrossCheckParams{12, AggFn::kMin},
                      CrossCheckParams{13, AggFn::kSum},
                      CrossCheckParams{14, AggFn::kAvg},
                      CrossCheckParams{15, AggFn::kCount},
                      CrossCheckParams{16, AggFn::kNone}));

}  // namespace
}  // namespace paleo
