// Tests for the report explanation renderer.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "paleo/explain.h"

namespace paleo {
namespace {

TopKList PaperList() {
  TopKList l;
  l.Append("Lara Ellis", 784);
  l.Append("Jane O'Neal", 699);
  l.Append("John Smith", 654);
  l.Append("Richard Fox", 596);
  l.Append("Jack Stiles", 586);
  return l;
}

TEST(ExplainTest, RendersFoundReport) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(PaperList(), /*keep_candidates=*/true);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());

  std::string text = ExplainReport(*report, table->schema());
  EXPECT_NE(text.find("Step 1"), std::string::npos);
  EXPECT_NE(text.find("candidate predicates:"), std::string::npos);
  EXPECT_NE(text.find("Step 2"), std::string::npos);
  EXPECT_NE(text.find("Step 3"), std::string::npos);
  EXPECT_NE(text.find("valid quer"), std::string::npos);
  EXPECT_NE(text.find("max(minutes)"), std::string::npos);
  EXPECT_NE(text.find("Top-scored candidates"), std::string::npos);
  EXPECT_NE(text.find("Timings"), std::string::npos);
}

TEST(ExplainTest, RendersNotFoundReportWithoutCandidates) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  TopKList bogus;
  bogus.Append("Lara Ellis", 1.0);
  bogus.Append("Jane O'Neal", 0.5);
  bogus.Append("John Smith", 0.25);
  bogus.Append("Richard Fox", 0.125);
  bogus.Append("Jack Stiles", 0.0625);
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(bogus);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->found());

  std::string text = ExplainReport(*report, table->schema());
  EXPECT_NE(text.find("no valid query found"), std::string::npos);
  // No retained candidates, so no candidate section.
  EXPECT_EQ(text.find("Top-scored candidates"), std::string::npos);
}

TEST(ExplainTest, OptionsControlSections) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(PaperList(), /*keep_candidates=*/true);
  ASSERT_TRUE(report.ok());

  ExplainOptions options;
  options.show_candidates = 0;
  options.show_timings = false;
  std::string text = ExplainReport(*report, table->schema(), options);
  EXPECT_EQ(text.find("Top-scored candidates"), std::string::npos);
  EXPECT_EQ(text.find("Timings"), std::string::npos);

  options.show_candidates = 1;
  text = ExplainReport(*report, table->schema(), options);
  EXPECT_NE(text.find("[1]"), std::string::npos);
  EXPECT_NE(text.find("more)"), std::string::npos);
}

}  // namespace
}  // namespace paleo
