// Tests for the deterministic I/O fault injector: replayability from
// the seed, the documented shape of each fault kind, and the fix_crc
// mode that defeats the PALB checksum on purpose.

#include "io/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "common/crc32.h"
#include "datagen/traffic_gen.h"
#include "io/binary_io.h"

namespace paleo {
namespace {

std::string SampleBuffer(size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('a' + i % 26));
  }
  return s;
}

TEST(FaultInjectionTest, SameSeedSameFault) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::string a = SampleBuffer(512);
    std::string b = a;
    FaultInjector ia(seed);
    FaultInjector ib(seed);
    FaultEvent ea = ia.Corrupt(&a);
    FaultEvent eb = ib.Corrupt(&b);
    EXPECT_EQ(ea.kind, eb.kind) << seed;
    EXPECT_EQ(ea.offset, eb.offset) << seed;
    EXPECT_EQ(ea.span, eb.span) << seed;
    EXPECT_EQ(a, b) << seed;
  }
}

TEST(FaultInjectionTest, FaultsActuallyPerturbTheBuffer) {
  const std::string clean = SampleBuffer(512);
  int changed = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    std::string bytes = clean;
    FaultInjector injector(seed);
    injector.Corrupt(&bytes);
    changed += bytes != clean;
  }
  // A garbage run may coincidentally rewrite bytes to themselves, so
  // demand near-universal rather than universal perturbation.
  EXPECT_GE(changed, 195);
}

TEST(FaultInjectionTest, FaultKindsMatchTheirEvents) {
  const std::string clean = SampleBuffer(1024);
  bool seen[4] = {false, false, false, false};
  for (uint64_t seed = 0; seed < 200; ++seed) {
    std::string bytes = clean;
    FaultInjector injector(seed);
    FaultEvent event = injector.Corrupt(&bytes);
    seen[static_cast<int>(event.kind)] = true;
    switch (event.kind) {
      case FaultKind::kTruncate:
        EXPECT_EQ(bytes.size(), event.offset);
        EXPECT_EQ(event.span, clean.size() - event.offset);
        break;
      case FaultKind::kBitFlip:
        EXPECT_EQ(bytes.size(), clean.size());
        EXPECT_GE(event.span, 1u);
        EXPECT_LE(event.span, 8u);
        break;
      case FaultKind::kShortRead:
        EXPECT_EQ(bytes.size(), clean.size() - event.span);
        EXPECT_GE(event.span, 1u);
        break;
      case FaultKind::kGarbageRun:
        EXPECT_EQ(bytes.size(), clean.size());
        EXPECT_LE(event.offset + event.span, clean.size());
        break;
    }
    EXPECT_FALSE(event.ToString().empty());
  }
  // 200 seeds must exercise every kind.
  for (bool kind_seen : seen) EXPECT_TRUE(kind_seen);
}

TEST(FaultInjectionTest, EmptyBufferIsLeftAlone) {
  std::string empty;
  FaultInjector injector(7);
  injector.Corrupt(&empty);
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectionTest, FixCrcRewritesTheTrailingChecksum) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  for (uint64_t seed = 0; seed < 100; ++seed) {
    std::string bytes = BinaryIo::Serialize(*table);
    FaultInjector injector(seed);
    injector.set_fix_crc(true);
    injector.Corrupt(&bytes);
    if (bytes.size() < sizeof(uint32_t) + 4) continue;
    size_t payload_end = bytes.size() - sizeof(uint32_t);
    uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload_end, sizeof(stored));
    EXPECT_EQ(stored, Crc32(bytes.data() + 4, payload_end - 4)) << seed;
  }
}

TEST(FaultInjectionTest, ReadFileCorruptedMissingFileIsAnError) {
  FaultInjector injector(1);
  auto result =
      injector.ReadFileCorrupted("/nonexistent/paleo_fault_test.bin");
  EXPECT_FALSE(result.ok());
}

TEST(FaultInjectionTest, ReadFileCorruptedPerturbsFileContents) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string path = ::testing::TempDir() + "/paleo_fault_test.palb";
  ASSERT_TRUE(BinaryIo::WriteFile(*table, path).ok());
  const std::string clean = BinaryIo::Serialize(*table);
  FaultInjector injector(42);
  auto corrupted = injector.ReadFileCorrupted(path);
  ASSERT_TRUE(corrupted.ok());
  // Replayable: the same seed applied in memory yields the same bytes.
  std::string replay = clean;
  FaultInjector twin(42);
  twin.Corrupt(&replay);
  EXPECT_EQ(*corrupted, replay);
}

}  // namespace
}  // namespace paleo
