// Unit tests for the process-wide fault-point registry: trigger
// semantics (Nth hit, seeded probability, max_fires), action payloads,
// counters, and the metric mirror. Chaos behavior of the sites
// themselves is covered by chaos_test.cc.

#include "common/fault_points.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace paleo {
namespace {

// Each test disarms on entry and exit so a failing ASSERT in one test
// cannot leak an armed spec into the next.
class FaultPointsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultPoints::DisarmAll(); }
  void TearDown() override { FaultPoints::DisarmAll(); }
};

TEST_F(FaultPointsTest, DisarmedPointDoesNothing) {
  EXPECT_FALSE(FaultPoints::AnyArmed());
  FaultResult result = PALEO_FAULT_POINT("test.unit.disarmed");
  EXPECT_FALSE(result.fired());
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.disarmed").hits, 0);
}

TEST_F(FaultPointsTest, ArmedOtherPointLeavesThisOneQuiet) {
  FaultSpec spec;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.other", spec);
  EXPECT_TRUE(FaultPoints::AnyArmed());
  FaultResult result = PALEO_FAULT_POINT("test.unit.this");
  EXPECT_FALSE(result.fired());
  // The miss is not even counted: only armed points track hits.
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.this").hits, 0);
}

TEST_F(FaultPointsTest, FiresExactlyAtNthHit) {
  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kIoError;
  spec.at_hit = 3;
  FaultPoints::Arm("test.unit.nth", spec);
  for (int hit = 1; hit <= 5; ++hit) {
    FaultResult result = PALEO_FAULT_POINT("test.unit.nth");
    EXPECT_EQ(result.fired(), hit == 3) << "hit " << hit;
  }
  FaultPoints::PointStats stats = FaultPoints::StatsFor("test.unit.nth");
  EXPECT_EQ(stats.hits, 5);
  EXPECT_EQ(stats.fires, 1);
}

TEST_F(FaultPointsTest, ErrorPayloadCarriesCodeAndMessage) {
  FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  spec.message = "injected: scratch pool exhausted";
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.payload", spec);
  FaultResult result = PALEO_FAULT_POINT("test.unit.payload");
  ASSERT_TRUE(result.error());
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.status.message(), "injected: scratch pool exhausted");
}

TEST_F(FaultPointsTest, EmptyMessageSynthesizedFromPointName) {
  FaultSpec spec;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.synth", spec);
  FaultResult result = PALEO_FAULT_POINT("test.unit.synth");
  ASSERT_TRUE(result.error());
  EXPECT_NE(result.status.message().find("test.unit.synth"),
            std::string::npos);
}

TEST_F(FaultPointsTest, ProbabilityPatternReplaysFromSeed) {
  auto run = [](uint64_t seed) {
    FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    FaultPoints::Arm("test.unit.prob", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(PALEO_FAULT_POINT("test.unit.prob").fired());
    }
    FaultPoints::Disarm("test.unit.prob");
    return pattern;
  };
  std::vector<bool> first = run(7);
  EXPECT_EQ(first, run(7));   // same seed, same firing pattern
  EXPECT_NE(first, run(8));   // 2^-64 flake odds, accepted
  int fires = 0;
  for (bool fired : first) fires += fired;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FaultPointsTest, MaxFiresCapsInjections) {
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 2;
  FaultPoints::Arm("test.unit.cap", spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += PALEO_FAULT_POINT("test.unit.cap").fired();
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.cap").fires, 2);
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.cap").hits, 10);
}

TEST_F(FaultPointsTest, DelayActionSleepsInsideHit) {
  FaultSpec spec;
  spec.action = FaultAction::kDelay;
  spec.delay_micros = 20000;  // 20ms: measurable, not slow
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.delay", spec);
  auto start = std::chrono::steady_clock::now();
  FaultResult result = PALEO_FAULT_POINT("test.unit.delay");
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_TRUE(result.fired());
  EXPECT_FALSE(result.error());  // a delay is not a Status failure
  EXPECT_GE(elapsed_ms, 15.0);   // scheduler slop tolerated downward
}

TEST_F(FaultPointsTest, SpuriousWakeupAndAllocFlagsMapToActions) {
  FaultSpec spec;
  spec.action = FaultAction::kSpuriousWakeup;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.wake", spec);
  EXPECT_TRUE(PALEO_FAULT_POINT("test.unit.wake").spurious_wakeup());

  spec.action = FaultAction::kAllocFailure;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.alloc", spec);
  FaultResult result = PALEO_FAULT_POINT("test.unit.alloc");
  EXPECT_TRUE(result.alloc_failure());
  EXPECT_FALSE(result.error());
  EXPECT_FALSE(result.spurious_wakeup());
}

TEST_F(FaultPointsTest, ReArmResetsCountersDisarmSilences) {
  FaultSpec spec;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.rearm", spec);
  EXPECT_TRUE(PALEO_FAULT_POINT("test.unit.rearm").fired());
  FaultPoints::Arm("test.unit.rearm", spec);  // counters reset
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.rearm").hits, 0);
  EXPECT_TRUE(PALEO_FAULT_POINT("test.unit.rearm").fired());

  FaultPoints::Disarm("test.unit.rearm");
  EXPECT_FALSE(PALEO_FAULT_POINT("test.unit.rearm").fired());
  EXPECT_EQ(FaultPoints::StatsFor("test.unit.rearm").hits, 0);
}

TEST_F(FaultPointsTest, TotalInjectedAndAttachedMetricCountFirings) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.FindOrCreateCounter(
      "paleo_faults_injected_total", "test mirror");
  FaultPoints::AttachMetric(counter);
  const int64_t before = FaultPoints::TotalInjected();
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  FaultPoints::Arm("test.unit.metric", spec);
  for (int i = 0; i < 5; ++i) {
    // Discard: only the injection COUNT matters here, not the Status.
    (void)PALEO_FAULT_POINT("test.unit.metric");
  }
  EXPECT_EQ(FaultPoints::TotalInjected() - before, 3);
  EXPECT_EQ(counter->value(), 3);
  FaultPoints::DetachMetric(counter);
  FaultPoints::Arm("test.unit.metric", spec);
  // Discard: asserting on the mirrored metric, not the Status value.
  (void)PALEO_FAULT_POINT("test.unit.metric");
  EXPECT_EQ(counter->value(), 3);  // detached: no further mirroring
}

TEST_F(FaultPointsTest, DetachOnlyClearsOwnAttachment) {
  obs::MetricsRegistry registry;
  obs::Counter* first = registry.FindOrCreateCounter(
      "paleo_faults_injected_total", "mirror", "owner=\"first\"");
  obs::Counter* second = registry.FindOrCreateCounter(
      "paleo_faults_injected_total", "mirror", "owner=\"second\"");
  FaultPoints::AttachMetric(first);
  FaultPoints::AttachMetric(second);  // last attach wins
  FaultPoints::DetachMetric(first);   // stale detach: must not clobber
  FaultSpec spec;
  spec.at_hit = 1;
  FaultPoints::Arm("test.unit.owner", spec);
  // Discard: the test observes which counter was mirrored, not the Status.
  (void)PALEO_FAULT_POINT("test.unit.owner");
  EXPECT_EQ(first->value(), 0);
  EXPECT_EQ(second->value(), 1);
  FaultPoints::DetachMetric(second);
}

TEST_F(FaultPointsTest, DisarmAllQuiescesEverything) {
  FaultSpec spec;
  spec.probability = 1.0;
  FaultPoints::Arm("test.unit.a", spec);
  FaultPoints::Arm("test.unit.b", spec);
  EXPECT_TRUE(FaultPoints::AnyArmed());
  FaultPoints::DisarmAll();
  EXPECT_FALSE(FaultPoints::AnyArmed());
  EXPECT_FALSE(PALEO_FAULT_POINT("test.unit.a").fired());
  EXPECT_FALSE(PALEO_FAULT_POINT("test.unit.b").fired());
}

TEST_F(FaultPointsTest, ConcurrentHitsAndArmDisarmAreSafe) {
  // Hammer one point from several threads while another thread arms
  // and disarms it; TSan is the real assertion, counters the sanity.
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 99;
  FaultPoints::Arm("test.unit.race", spec);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> observed_fires{0};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        observed_fires.fetch_add(
            PALEO_FAULT_POINT("test.unit.race").fired() ? 1 : 0,
            std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    FaultPoints::Arm("test.unit.race", spec);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    FaultPoints::Disarm("test.unit.race");
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hitters) t.join();
  EXPECT_GE(observed_fires.load(), 0);
}

}  // namespace
}  // namespace paleo
