// Bounded deterministic fuzz tests: the three parsers (SQL dialect,
// CSV relation, binary relation) must never crash or corrupt memory on
// adversarial input — every malformed input yields a Status error.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "datagen/traffic_gen.h"
#include "engine/sql_parser.h"
#include "engine/topk_list.h"
#include "io/binary_io.h"
#include "io/table_io.h"

namespace paleo {
namespace {

/// Random single-byte mutations of a valid input.
std::string Mutate(std::string input, Rng* rng, int mutations) {
  for (int i = 0; i < mutations && !input.empty(); ++i) {
    size_t pos = static_cast<size_t>(rng->Uniform(input.size()));
    switch (rng->Uniform(4)) {
      case 0:  // flip
        input[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:  // delete
        input.erase(pos, 1);
        break;
      case 2:  // duplicate
        input.insert(pos, 1, input[pos]);
        break;
      default:  // truncate tail
        input.resize(pos);
        break;
    }
  }
  return input;
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  Schema schema = TrafficGen::MakeSchema();
  const std::string seed_sql =
      "SELECT name, sum(minutes + sms) FROM t WHERE state = 'CA' AND "
      "year BETWEEN 1 AND 2 GROUP BY name ORDER BY sum(minutes + sms) "
      "DESC LIMIT 5";
  Rng rng(1001);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated =
        Mutate(seed_sql, &rng, 1 + static_cast<int>(rng.Uniform(6)));
    auto result = ParseTopKQuery(mutated, schema);
    parsed_ok += result.ok();  // either outcome is fine; no crash is the test
  }
  // Sanity: some heavily mutated inputs should fail.
  EXPECT_LT(parsed_ok, 3000);
}

TEST(FuzzTest, TopKListCsvNeverCrashes) {
  const std::string seed = "name,value\na,1\nb,2.5\n\"c,d\",3\n";
  Rng rng(1002);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(8)));
    auto result = TopKList::FromCsv(mutated);
    (void)result;
  }
}

TEST(FuzzTest, TableCsvNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string seed = TableIo::ToCsv(*table);
  Rng rng(1003);
  for (int trial = 0; trial < 800; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(10)));
    auto result = TableIo::FromCsv(mutated);
    (void)result;
  }
}

TEST(FuzzTest, BinaryTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string seed = BinaryIo::Serialize(*table);
  Rng rng(1004);
  for (int trial = 0; trial < 1500; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(10)));
    auto result = BinaryIo::Deserialize(mutated);
    // Single-byte CRC-protected mutations must never parse as a
    // DIFFERENT table; parsing success is only acceptable if the
    // mutation cancelled out (astronomically unlikely but permitted).
    (void)result;
  }
  // Pure random garbage too.
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    EXPECT_FALSE(BinaryIo::Deserialize(garbage).ok());
  }
}

}  // namespace
}  // namespace paleo
