// Bounded deterministic fuzz tests: the three parsers (SQL dialect,
// CSV relation, binary relation) must never crash or corrupt memory on
// adversarial input — every malformed input yields a Status error.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/traffic_gen.h"
#include "engine/sql_parser.h"
#include "engine/topk_list.h"
#include "io/binary_io.h"
#include "io/fault_injection.h"
#include "io/table_io.h"

namespace paleo {
namespace {

/// Random single-byte mutations of a valid input.
std::string Mutate(std::string input, Rng* rng, int mutations) {
  for (int i = 0; i < mutations && !input.empty(); ++i) {
    size_t pos = static_cast<size_t>(rng->Uniform(input.size()));
    switch (rng->Uniform(4)) {
      case 0:  // flip
        input[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:  // delete
        input.erase(pos, 1);
        break;
      case 2:  // duplicate
        input.insert(pos, 1, input[pos]);
        break;
      default:  // truncate tail
        input.resize(pos);
        break;
    }
  }
  return input;
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  Schema schema = TrafficGen::MakeSchema();
  const std::string seed_sql =
      "SELECT name, sum(minutes + sms) FROM t WHERE state = 'CA' AND "
      "year BETWEEN 1 AND 2 GROUP BY name ORDER BY sum(minutes + sms) "
      "DESC LIMIT 5";
  Rng rng(1001);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated =
        Mutate(seed_sql, &rng, 1 + static_cast<int>(rng.Uniform(6)));
    auto result = ParseTopKQuery(mutated, schema);
    parsed_ok += result.ok();  // either outcome is fine; no crash is the test
  }
  // Sanity: some heavily mutated inputs should fail.
  EXPECT_LT(parsed_ok, 3000);
}

TEST(FuzzTest, TopKListCsvNeverCrashes) {
  const std::string seed = "name,value\na,1\nb,2.5\n\"c,d\",3\n";
  Rng rng(1002);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(8)));
    auto result = TopKList::FromCsv(mutated);
    (void)result;
  }
}

TEST(FuzzTest, TableCsvNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string seed = TableIo::ToCsv(*table);
  Rng rng(1003);
  for (int trial = 0; trial < 800; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(10)));
    auto result = TableIo::FromCsv(mutated);
    (void)result;
  }
}

TEST(FuzzTest, BinaryTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string seed = BinaryIo::Serialize(*table);
  Rng rng(1004);
  for (int trial = 0; trial < 1500; ++trial) {
    std::string mutated =
        Mutate(seed, &rng, 1 + static_cast<int>(rng.Uniform(10)));
    auto result = BinaryIo::Deserialize(mutated);
    // Single-byte CRC-protected mutations must never parse as a
    // DIFFERENT table; parsing success is only acceptable if the
    // mutation cancelled out (astronomically unlikely but permitted).
    (void)result;
  }
  // Pure random garbage too.
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    EXPECT_FALSE(BinaryIo::Deserialize(garbage).ok());
  }
}

// Round-trip under seeded storage faults: each iteration corrupts a
// fresh copy of a valid PALB buffer with one injected fault (truncation,
// bit flips, a short read, or a garbage run) and reloads it. The io/
// layer's contract is that every fault surfaces as a Status or — when
// the corruption happens to leave a structurally valid file — as a
// table that itself round-trips; never a crash or OOB read. Odd seeds
// run with fix_crc so the recomputed checksum cannot save the parser
// and its structural validation (counts, per-column lengths, dictionary
// codes) is what gets exercised.
TEST(FuzzTest, FaultInjectedBinaryTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const std::string clean = BinaryIo::Serialize(*table);
  int parsed_ok = 0;
  int crc_caught = 0;
  for (uint64_t seed = 0; seed < 1200; ++seed) {
    FaultInjector injector(seed);
    const bool fix_crc = (seed % 2) == 1;
    injector.set_fix_crc(fix_crc);
    std::string bytes = clean;
    FaultEvent fault = injector.Corrupt(&bytes);
    auto result = BinaryIo::Deserialize(bytes);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().ToString().empty())
          << "seed " << seed << ": " << fault.ToString();
      if (result.status().ToString().find("CRC") != std::string::npos) {
        ++crc_caught;
      }
      continue;
    }
    ++parsed_ok;
    // Survivors must be coherent tables, not garbage that happened to
    // decode: re-serializing and reloading them must succeed.
    std::string again = BinaryIo::Serialize(*result);
    EXPECT_TRUE(BinaryIo::Deserialize(again).ok())
        << "seed " << seed << ": " << fault.ToString();
  }
  // With the checksum intact, corruption is overwhelmingly caught by
  // the CRC; with fix_crc the structural checks must hold the line, so
  // some parses succeed but most faults still fail loudly.
  EXPECT_GT(crc_caught, 0);
  EXPECT_LT(parsed_ok, 1200);
}

// Compound corruption: several independent faults land on one buffer
// before it is reloaded, the way one failing device scars a file in
// multiple places. Same contract as the single-fault test — a Status
// or a coherent round-trippable table, never a crash — but the faults
// now interact (a truncate changes the range later flips draw from).
TEST(FuzzTest, CompoundFaultBinaryTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const std::string clean = BinaryIo::Serialize(*table);
  int parsed_ok = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    FaultInjector injector(seed + 9000);
    injector.set_fix_crc((seed % 2) == 1);
    Rng rng(seed * 31 + 7);
    const int count = 2 + static_cast<int>(rng.Uniform(3));  // 2-4 faults
    std::string bytes = clean;
    std::vector<FaultEvent> faults = injector.CorruptMany(&bytes, count);
    EXPECT_LE(faults.size(), static_cast<size_t>(count));
    auto result = BinaryIo::Deserialize(bytes);
    if (!result.ok()) continue;
    ++parsed_ok;
    std::string again = BinaryIo::Serialize(*result);
    EXPECT_TRUE(BinaryIo::Deserialize(again).ok()) << "seed " << seed;
  }
  // Multiple stacked faults are strictly harder to survive than one;
  // the overwhelming majority must fail loudly.
  EXPECT_LT(parsed_ok, 400);
}

TEST(FuzzTest, CompoundFaultCsvTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const std::string clean = TableIo::ToCsv(*table);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultInjector injector(seed + 11000);
    Rng rng(seed * 17 + 3);
    std::string bytes = clean;
    std::vector<FaultEvent> faults =
        injector.CorruptMany(&bytes, 2 + static_cast<int>(rng.Uniform(3)));
    auto result = TableIo::FromCsv(bytes);
    if (result.ok()) {
      std::string detail;
      for (const FaultEvent& fault : faults) detail += fault.ToString() + "; ";
      EXPECT_TRUE(result->CheckConsistent().ok())
          << "seed " << seed << ": " << detail;
    }
  }
}

TEST(FuzzTest, CorruptManyOnEmptyBufferIsANoOp) {
  FaultInjector injector(1);
  std::string empty;
  EXPECT_TRUE(injector.CorruptMany(&empty, 4).empty());
  EXPECT_TRUE(empty.empty());
}

TEST(FuzzTest, FaultInjectedCsvTableNeverCrashes) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const std::string clean = TableIo::ToCsv(*table);
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    FaultInjector injector(seed + 5000);
    std::string bytes = clean;
    FaultEvent fault = injector.Corrupt(&bytes);
    auto result = TableIo::FromCsv(bytes);
    if (result.ok()) {
      EXPECT_TRUE(result->CheckConsistent().ok())
          << "seed " << seed << ": " << fault.ToString();
    }
  }
}

}  // namespace
}  // namespace paleo
