// Tests for the equi-width histogram.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "stats/histogram.h"

namespace paleo {
namespace {

TEST(HistogramTest, EmptyColumn) {
  Histogram h = Histogram::BuildFromValues({}, 10);
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.num_cells(), 0);
  Rng rng(1);
  EXPECT_TRUE(h.Sample(&rng, 5).empty());
  EXPECT_TRUE(h.TopValues(5).empty());
}

TEST(HistogramTest, SingleValueDegenerates) {
  Histogram h = Histogram::BuildFromValues({7.0, 7.0, 7.0}, 10);
  EXPECT_EQ(h.total_count(), 3);
  EXPECT_EQ(h.min(), 7.0);
  EXPECT_EQ(h.max(), 7.0);
  // All mass in the first cell.
  EXPECT_EQ(h.cell_count(0), 3);
  Rng rng(1);
  for (double v : h.Sample(&rng, 20)) {
    EXPECT_GE(v, 7.0);
    EXPECT_LE(v, 8.0);  // one unit-width cell
  }
}

TEST(HistogramTest, CountsPreserveTotalMass) {
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) values.push_back(rng.UniformDouble(0, 100));
  Histogram h = Histogram::BuildFromValues(values, 1000);
  int64_t total = 0;
  for (int c = 0; c < h.num_cells(); ++c) total += h.cell_count(c);
  EXPECT_EQ(total, 10000);
  EXPECT_EQ(h.total_count(), 10000);
}

TEST(HistogramTest, CellForClampsAndRoutes) {
  Histogram h = Histogram::BuildFromValues({0.0, 10.0}, 10);
  EXPECT_EQ(h.CellFor(-5.0), 0);
  EXPECT_EQ(h.CellFor(0.0), 0);
  EXPECT_EQ(h.CellFor(10.0), 9);
  EXPECT_EQ(h.CellFor(99.0), 9);
  EXPECT_EQ(h.CellFor(4.9), 4);
}

TEST(HistogramTest, SampleFollowsDistribution) {
  // 90% of mass near 0, 10% near 100.
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(1.0);
  for (int i = 0; i < 100; ++i) values.push_back(99.0);
  Histogram h = Histogram::BuildFromValues(values, 100);
  Rng rng(7);
  std::vector<double> sample = h.Sample(&rng, 5000);
  int low = 0;
  for (double v : sample) low += (v < 50.0);
  EXPECT_NEAR(static_cast<double>(low) / 5000.0, 0.9, 0.03);
}

TEST(HistogramTest, SampleIsDeterministicGivenSeed) {
  Histogram h = Histogram::BuildFromValues({1, 2, 3, 4, 5}, 5);
  Rng a(42), b(42);
  EXPECT_EQ(h.Sample(&a, 10), h.Sample(&b, 10));
}

TEST(HistogramTest, TopValuesWalksFromTheTop) {
  std::vector<double> values = {1, 1, 1, 50, 100};
  Histogram h = Histogram::BuildFromValues(values, 10);
  std::vector<double> top = h.TopValues(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GT(top[0], 90.0);   // from the highest cell
  EXPECT_GT(top[1], 40.0);   // from the middle cell
  EXPECT_GE(top[0], top[1]);
}

TEST(HistogramTest, BuildFromColumnMatchesBuildFromValues) {
  Column col(DataType::kInt64);
  std::vector<double> values;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(0, 1000);
    col.AppendInt64(v);
    values.push_back(static_cast<double>(v));
  }
  Histogram from_col = Histogram::Build(col, 50);
  Histogram from_vals = Histogram::BuildFromValues(values, 50);
  ASSERT_EQ(from_col.num_cells(), from_vals.num_cells());
  for (int c = 0; c < from_col.num_cells(); ++c) {
    EXPECT_EQ(from_col.cell_count(c), from_vals.cell_count(c)) << c;
  }
}

TEST(HistogramTest, NegativeRanges) {
  Histogram h = Histogram::BuildFromValues({-100, -50, 0, 50, 100}, 4);
  EXPECT_EQ(h.min(), -100.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_EQ(h.CellFor(-100), 0);
  EXPECT_EQ(h.CellFor(100), 3);
}

}  // namespace
}  // namespace paleo
