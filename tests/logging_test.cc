// Tests for the logging / CHECK infrastructure.

#include <gtest/gtest.h>

#include "common/logging.h"

namespace paleo {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MessagesBelowLevelAreCheap) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Must not crash, and the streamed expression is formatted only when
  // enabled; just exercise the path.
  PALEO_LOG(Debug) << "invisible " << 42;
  PALEO_LOG(Info) << "also invisible";
  PALEO_LOG(Error) << "visible error from LoggingTest (expected)";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PALEO_CHECK(1 == 2) << "math broke: " << 42; },
               "CHECK failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(PALEO_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(LoggingTest, CheckPassesSilently) {
  PALEO_CHECK(2 + 2 == 4) << "never printed";
  PALEO_CHECK_OK(Status::OK());
  PALEO_DCHECK(true) << "never printed";
}

}  // namespace
}  // namespace paleo
