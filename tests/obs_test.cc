// Unit tests for the observability layer: metrics instruments and
// registry (src/obs/metrics.h) and the structured span tracer
// (src/obs/trace.h), including the nullable-handle disabled path and a
// concurrency stress for the exact-totals guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "engine/atom_cache.h"
#include "engine/selection_bitmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paleo/pipeline_metrics.h"

namespace paleo {
namespace obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketLadderIsExponentialMicroseconds) {
  // 2^i microseconds: bucket 0 tops at 1 us, bucket 10 at ~1.024 ms.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1.024);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     2.0 * Histogram::BucketUpperBound(i - 1));
  }
}

TEST(HistogramTest, ObservePlacesIntoCoveringBucket) {
  Histogram h;
  h.Observe(0.0005);  // below the first bound -> bucket 0
  h.Observe(1.0);     // 1 ms = 1024 us -> ceil(log2(1000)) = 10
  h.Observe(100000.0);  // 100 s > last finite bound -> +Inf bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(10), 1);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets), 1);
  EXPECT_NEAR(h.sum_ms(), 100001.0005, 0.01);
}

TEST(HistogramTest, ObserveClampsNanAndNegatives) {
  Histogram h;
  h.Observe(-5.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket_count(0), 2);  // both clamp to zero
  EXPECT_DOUBLE_EQ(h.sum_ms(), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  // 100 observations all in bucket 10 (upper bound 1.024 ms, lower
  // 0.512 ms): p50 lands mid-bucket by linear interpolation.
  for (int i = 0; i < 100; ++i) h.Observe(1.0);
  double p50 = h.p50();
  EXPECT_GT(p50, 0.512);
  EXPECT_LE(p50, 1.024);
  EXPECT_NEAR(p50, 0.512 + (1.024 - 0.512) * 0.5, 1e-9);
  EXPECT_NEAR(h.p99(), 0.512 + (1.024 - 0.512) * 0.99, 1e-9);
}

TEST(HistogramTest, QuantileOfInfTailReportsLastFiniteBound) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(1e9);  // all +Inf bucket
  EXPECT_DOUBLE_EQ(h.p99(),
                   Histogram::BucketUpperBound(Histogram::kNumBuckets - 1));
}

TEST(MetricsRegistryTest, FindOrCreateIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("paleo_x_total", "help");
  Counter* b = registry.FindOrCreateCounter("paleo_x_total", "other help");
  EXPECT_EQ(a, b);  // same (kind, name, labels) -> same instrument
  Counter* labeled =
      registry.FindOrCreateCounter("paleo_x_total", "help", "kind=\"a\"");
  EXPECT_NE(a, labeled);  // distinct label set -> distinct instrument
  EXPECT_EQ(registry.size(), 2u);
  a->Add(2);
  labeled->Add(3);
  EXPECT_EQ(registry.counter("paleo_x_total")->value(), 2);
  EXPECT_EQ(registry.counter("paleo_x_total", "kind=\"a\"")->value(), 3);
  EXPECT_EQ(registry.counter("absent"), nullptr);
  EXPECT_EQ(registry.gauge("paleo_x_total"), nullptr);  // kind mismatch
}

TEST(MetricsRegistryTest, RenderTextEmitsPrometheusExposition) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("paleo_runs_total", "Completed runs")
      ->Add(3);
  registry
      .FindOrCreateCounter("paleo_outcomes_total", "By outcome",
                           "outcome=\"executed\"")
      ->Add(5);
  registry
      .FindOrCreateCounter("paleo_outcomes_total", "By outcome",
                           "outcome=\"skipped\"")
      ->Add(7);
  registry.FindOrCreateGauge("paleo_queue_depth", "Queue depth")->Set(2);
  Histogram* h =
      registry.FindOrCreateHistogram("paleo_run_ms", "Run latency");
  h->Observe(1.0);
  h->Observe(1.0);

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP paleo_runs_total Completed runs\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE paleo_runs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_runs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("paleo_outcomes_total{outcome=\"executed\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_outcomes_total{outcome=\"skipped\"} 7\n"),
            std::string::npos);
  // One HELP per family even with two label sets.
  EXPECT_EQ(text.find("# HELP paleo_outcomes_total"),
            text.rfind("# HELP paleo_outcomes_total"));
  EXPECT_NE(text.find("# TYPE paleo_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_queue_depth 2\n"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, then _sum and _count.
  EXPECT_NE(text.find("# TYPE paleo_run_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_run_ms_bucket{le=\"1.024\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("paleo_run_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_run_ms_sum 2.000000\n"), std::string::npos);
  EXPECT_NE(text.find("paleo_run_ms_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, AtomCacheCountersExposeThroughRegistry) {
  MetricsRegistry registry;
  PipelineMetrics metrics = PipelineMetrics::Bind(&registry);
  AtomSelectionCache cache(
      2 * SelectionBitmap(64).MemoryUsage(),
      AtomSelectionCache::MetricHandles{
          metrics.cache_hits, metrics.cache_misses, metrics.cache_evictions,
          metrics.cache_resident_bytes});
  AtomicPredicate atom_a(0, Value::Int64(1));
  AtomicPredicate atom_b(0, Value::Int64(2));
  AtomicPredicate atom_c(0, Value::Int64(3));
  EXPECT_EQ(cache.Lookup(1, 0, atom_a), nullptr);  // miss
  cache.Insert(1, 0, atom_a, SelectionBitmap(64));
  EXPECT_NE(cache.Lookup(1, 0, atom_a), nullptr);  // hit
  cache.Insert(1, 0, atom_b, SelectionBitmap(64));
  cache.Insert(1, 0, atom_c, SelectionBitmap(64));  // evicts the LRU entry

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE paleo_cache_hits_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("paleo_cache_hits_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("paleo_cache_misses_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("paleo_cache_evictions_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE paleo_cache_resident_bytes gauge\n"),
            std::string::npos);
  // The gauge mirrors the cache's own resident-bytes accounting.
  EXPECT_NE(text.find("paleo_cache_resident_bytes " +
                      std::to_string(cache.stats().resident_bytes) + "\n"),
            std::string::npos)
      << text;
}

TEST(NullableHandleTest, DisabledHandlesAreNoOps) {
  // The disabled path must be callable with plain nulls — this is the
  // contract every pipeline instrumentation site relies on.
  Inc(nullptr);
  Inc(nullptr, 100);
  Set(nullptr, 5);
  Add(nullptr, -5);
  Observe(nullptr, 1.25);
  Counter c;
  Inc(&c, 2);
  EXPECT_EQ(c.value(), 2);
  Gauge g;
  Add(&g, 3);
  Set(&g, 9);
  EXPECT_EQ(g.value(), 9);
  Histogram h;
  Observe(&h, 0.5);
  EXPECT_EQ(h.count(), 1);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  // N threads hammer one counter and one histogram while also racing
  // FindOrCreate on the same names; totals must come out exact.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c =
          registry.FindOrCreateCounter("stress_total", "stress");
      Histogram* h =
          registry.FindOrCreateHistogram("stress_ms", "stress");
      Gauge* g = registry.FindOrCreateGauge("stress_depth", "stress");
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Observe(0.004);  // bucket 2
        g->Add(1);
        g->Add(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("stress_total")->value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("stress_ms")->count(),
            kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("stress_ms")->bucket_count(2),
            kThreads * kPerThread);
  EXPECT_EQ(registry.gauge("stress_depth")->value(), 0);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, RenderTextLabeledHistogramRows) {
  // Regression for the render loop's reused row-label buffer: every
  // bucket row of a *labeled* histogram must compose as
  // `name_bucket{labels,le="..."}`, and two label sets of one family
  // must not bleed into each other.
  MetricsRegistry registry;
  Histogram* mine = registry.FindOrCreateHistogram(
      "paleo_stage_ms", "Stage latency", "stage=\"mine\"");
  Histogram* validate = registry.FindOrCreateHistogram(
      "paleo_stage_ms", "Stage latency", "stage=\"validate\"");
  mine->Observe(0.001);  // bucket 0 (le="0.001")
  mine->Observe(1.0);    // le="1.024"
  validate->Observe(0.5);  // le="0.512"

  std::string text = registry.RenderText();
  EXPECT_NE(
      text.find("paleo_stage_ms_bucket{stage=\"mine\",le=\"0.001\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("paleo_stage_ms_bucket{stage=\"mine\",le=\"1.024\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("paleo_stage_ms_bucket{stage=\"mine\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("paleo_stage_ms_sum{stage=\"mine\"} 1.001000\n"),
            std::string::npos);
  EXPECT_NE(text.find("paleo_stage_ms_count{stage=\"mine\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "paleo_stage_ms_bucket{stage=\"validate\",le=\"0.512\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("paleo_stage_ms_count{stage=\"validate\"} 1\n"),
            std::string::npos);
  // One HELP per family even with two label sets.
  EXPECT_EQ(text.find("# HELP paleo_stage_ms"),
            text.rfind("# HELP paleo_stage_ms"));
}

TEST(MetricsRegistryTest, ConcurrentRegisterVsScrape) {
  // Writers keep registering fresh (name, labels) pairs while scrapers
  // loop RenderText/lookup/size — registration takes the writer lock,
  // scrapes share the reader lock, and nothing may tear (TSan lane
  // covers this test). Totals and the final exposition must be exact.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kScrapers = 2;
  constexpr int kPerWriter = 64;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string labels =
            "writer=\"" + std::to_string(w) + "\",i=\"" +
            std::to_string(i) + "\"";
        registry
            .FindOrCreateCounter("paleo_scrape_race_total", "race",
                                 labels)
            ->Add(1);
        registry.FindOrCreateHistogram("paleo_scrape_race_ms", "race",
                                       labels)
            ->Observe(0.004);
      }
    });
  }
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&registry, &done] {
      size_t renders = 0;
      while (!done.load(std::memory_order_relaxed) || renders == 0) {
        // The scrape must always see a structurally complete exposition
        // (never a half-registered entry): any sample line implies its
        // family header was rendered first.
        std::string text = registry.RenderText();
        if (!text.empty()) {
          EXPECT_EQ(text.find("# HELP"), 0u) << text.substr(0, 120);
        }
        (void)registry.counter("paleo_scrape_race_total",
                               "writer=\"0\",i=\"0\"");
        (void)registry.size();
        ++renders;
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(registry.size(),
            static_cast<size_t>(2 * kWriters * kPerWriter));
  std::string text = registry.RenderText();
  EXPECT_EQ(text.find("# HELP paleo_scrape_race_total"),
            text.rfind("# HELP paleo_scrape_race_total"));
  EXPECT_NE(text.find("paleo_scrape_race_total{writer=\"3\",i=\"" +
                      std::to_string(kPerWriter - 1) + "\"} 1\n"),
            std::string::npos);
}

// ------------------------------------------------------------------ trace

TEST(TraceTest, BuildsSpanTree) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  Trace::SpanId root = trace.StartSpan("run");
  Trace::SpanId child = trace.StartSpan("validate", root);
  EXPECT_FALSE(trace.span(child).finished());
  trace.EndSpan(child);
  trace.EndSpan(root);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.span(root).parent, Trace::kNoSpan);
  EXPECT_EQ(trace.span(child).parent, root);
  EXPECT_TRUE(trace.span(child).finished());
  EXPECT_GE(trace.span(root).duration_ms(), 0.0);
  const Span* found = trace.FindSpan("validate");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->parent, root);
  EXPECT_EQ(trace.FindSpan("absent"), nullptr);
}

TEST(TraceTest, EndSpanFirstEndWins) {
  Trace trace;
  Trace::SpanId id = trace.StartSpan("s");
  trace.EndSpan(id);
  auto first = trace.span(id).end;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.EndSpan(id);  // idempotent
  EXPECT_EQ(trace.span(id).end, first);
  // Out-of-range ids are ignored, not UB.
  trace.EndSpan(Trace::kNoSpan);
  trace.EndSpan(99);
  trace.AddAttr(Trace::kNoSpan, "k", int64_t{1});
}

TEST(TraceTest, TypedAttributes) {
  Trace trace;
  Trace::SpanId id = trace.StartSpan("s");
  trace.AddAttr(id, "count", int64_t{7});
  trace.AddAttr(id, "ratio", 0.5);
  trace.AddAttr(id, "state", std::string_view("done"));
  trace.EndSpan(id);
  const std::vector<SpanAttr>& attrs = trace.span(id).attrs;
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].kind, SpanAttr::Kind::kInt);
  EXPECT_EQ(attrs[0].i, 7);
  EXPECT_EQ(attrs[1].kind, SpanAttr::Kind::kDouble);
  EXPECT_DOUBLE_EQ(attrs[1].d, 0.5);
  EXPECT_EQ(attrs[2].kind, SpanAttr::Kind::kString);
  EXPECT_EQ(attrs[2].s, "done");
}

TEST(TraceTest, ScopedSpanIsNullTolerantRaii) {
  {
    ScopedSpan off(nullptr, "ignored");
    off.AddAttr("k", int64_t{1});
    off.End();  // all no-ops
    EXPECT_EQ(off.trace(), nullptr);
  }
  Trace trace;
  {
    ScopedSpan outer(&trace, "outer");
    ScopedSpan inner(&trace, "inner", outer.id());
    inner.AddAttr("n", int64_t{3});
  }  // both end on scope exit
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace.span(0).finished());
  EXPECT_TRUE(trace.span(1).finished());
  EXPECT_EQ(trace.span(1).parent, 0);
  ASSERT_EQ(trace.span(1).attrs.size(), 1u);
}

TEST(TraceTest, AdoptRebasesParents) {
  Trace inner;
  Trace::SpanId run = inner.StartSpan("run");
  Trace::SpanId validate = inner.StartSpan("validate", run);
  inner.EndSpan(validate);
  inner.EndSpan(run);

  Trace session;
  Trace::SpanId root = session.StartSpan("session");
  Trace::SpanId grafted = session.Adopt(inner, root);
  session.EndSpan(root);
  ASSERT_EQ(grafted, 1);
  ASSERT_EQ(session.size(), 3u);
  // Inner's root hangs under the session span; inner's child keeps its
  // relative structure, rebased into the new arena.
  EXPECT_EQ(session.span(1).parent, root);
  EXPECT_EQ(session.span(2).parent, 1);
  EXPECT_EQ(session.span(2).name, "validate");
  // Adopting an empty trace is a no-op.
  Trace empty;
  EXPECT_EQ(session.Adopt(empty, root), Trace::kNoSpan);
}

TEST(TraceTest, ToJsonNestsChildrenAndEscapes) {
  Trace trace;
  EXPECT_EQ(trace.ToJson(), "[]");
  Trace::SpanId root = trace.StartSpan("run");
  Trace::SpanId child = trace.StartSpan("find \"predicates\"", root);
  trace.AddAttr(child, "count", int64_t{12});
  trace.AddAttr(child, "note", std::string_view("a\nb"));
  trace.EndSpan(child);
  trace.EndSpan(root);
  std::string json = trace.ToJson();
  EXPECT_EQ(json.front(), '{');  // single root -> object, not array
  EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"find \\\"predicates\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":12"), std::string::npos);
  EXPECT_NE(json.find("\"a\\nb\""), std::string::npos);
  EXPECT_NE(json.find("\"start_ms\":0.000"), std::string::npos);

  // Two roots render as an array.
  Trace pair;
  pair.EndSpan(pair.StartSpan("a"));
  pair.EndSpan(pair.StartSpan("b"));
  std::string arr = pair.ToJson();
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
}

}  // namespace
}  // namespace obs
}  // namespace paleo
