// Behavioral tests for PaleoOptions knobs: each option must change the
// documented behavior and nothing else (results stay correct).

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace {

struct TpchFixture {
  Table table;
  WorkloadQuery query;

  static TpchFixture Make() {
    TpchGenOptions gen;
    gen.scale_factor = 0.002;
    auto table = TpchGen::Generate(gen);
    EXPECT_TRUE(table.ok());
    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA};
    wl.predicate_sizes = {2};
    wl.ks = {10};
    wl.queries_per_config = 1;
    auto workload = WorkloadGen::Generate(*table, wl);
    EXPECT_TRUE(workload.ok());
    EXPECT_FALSE(workload->empty());
    return TpchFixture{*std::move(table), (*workload)[0]};
  }
};

TEST(OptionsBehaviorTest, DimensionIndexDoesNotChangeResults) {
  TpchFixture f = TpchFixture::Make();
  PaleoOptions with_index;
  with_index.use_dimension_index = true;
  PaleoOptions without_index;
  without_index.use_dimension_index = false;
  Paleo a(&f.table, with_index);
  Paleo b(&f.table, without_index);
  auto ra = a.Run(f.query.list);
  auto rb = b.Run(f.query.list);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(ra->found());
  ASSERT_TRUE(rb->found());
  EXPECT_TRUE(ra->valid[0].query == rb->valid[0].query);
  EXPECT_EQ(ra->executed_queries, rb->executed_queries);
  // The indexed run answers executions from postings.
  EXPECT_GT(a.executor()->stats().index_assisted, 0);
  EXPECT_EQ(b.executor()->stats().index_assisted, 0);
  EXPECT_LT(a.executor()->stats().rows_scanned,
            b.executor()->stats().rows_scanned);
}

TEST(OptionsBehaviorTest, MaxCriteriaPerGroupCapsSampledCandidates) {
  TpchFixture f = TpchFixture::Make();
  PaleoOptions capped;
  capped.max_criteria_per_group = 2;
  PaleoOptions uncapped;
  uncapped.max_criteria_per_group = 0;
  Paleo a(&f.table, capped);
  Paleo b(&f.table, uncapped);
  auto sample = Sampler::UniformPerEntity(
      a.index(), f.query.list.DistinctEntities(), 0.3, 5);
  ASSERT_TRUE(sample.ok());
  auto ra = a.RunOnSample(f.query.list, *sample, 0.3);
  auto rb = b.RunOnSample(f.query.list, *sample, 0.3);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LT(ra->candidate_queries, rb->candidate_queries);
  // Cap of 2 criteria per tuple set bounds candidates by 2 * #preds.
  EXPECT_LE(ra->candidate_queries, 2 * ra->candidate_predicates);
}

TEST(OptionsBehaviorTest, ObservedMatchRateTogglesTheModel) {
  // Construct a sampled scenario and check the two estimators yield
  // different false-positive probabilities for partially covered
  // predicates (the observed rate is the default for a reason, see
  // ProbModel).
  TpchFixture f = TpchFixture::Make();
  PaleoOptions options;
  Paleo paleo(&f.table, options);
  auto sample = Sampler::UniformPerEntity(
      paleo.index(), f.query.list.DistinctEntities(), 0.2, 7);
  ASSERT_TRUE(sample.ok());

  auto run = [&](bool observed) {
    PaleoOptions override = paleo.options();
    override.use_observed_match_rate = observed;
    RunRequest request;
    request.input = &f.query.list;
    request.sample_rows = &*sample;
    request.sample_fraction = 0.2;
    request.keep_candidates = true;
    request.options_override = &override;
    auto report = paleo.Run(request);
    EXPECT_TRUE(report.ok());
    return *std::move(report);
  };
  ReverseEngineerReport with = run(true);
  ReverseEngineerReport without = run(false);
  ASSERT_EQ(with.candidates.size(), without.candidates.size());
  // Identical query sets, potentially different scores/order.
  bool any_partially_covered = false;
  for (const CandidateQuery& cq : with.candidates) {
    any_partially_covered |= cq.p_false_positive > 0.0;
  }
  // If the sample left some predicate partially covered, the two
  // estimators must actually disagree somewhere.
  if (any_partially_covered) {
    bool differs = false;
    for (size_t i = 0; i < with.candidates.size() && !differs; ++i) {
      differs |= !(with.candidates[i].query == without.candidates[i].query);
    }
    // Either the order changed or (if not) at least scores did; find a
    // matching query and compare its score.
    if (!differs) {
      for (size_t i = 0; i < with.candidates.size(); ++i) {
        if (with.candidates[i].p_false_positive !=
            without.candidates[i].p_false_positive) {
          differs = true;
          break;
        }
      }
    }
    EXPECT_TRUE(differs);
  }
}

TEST(OptionsBehaviorTest, MaxPredicateSizeBoundsMinedConjunctions) {
  TpchFixture f = TpchFixture::Make();
  for (int cap = 1; cap <= 3; ++cap) {
    PaleoOptions options;
    options.max_predicate_size = cap;
    options.include_empty_predicate = false;
    Paleo paleo(&f.table, options);
    auto report = paleo.Run(f.query.list, /*keep_candidates=*/true);
    ASSERT_TRUE(report.ok());
    for (const CandidateQuery& cq : report->candidates) {
      EXPECT_LE(cq.query.predicate.size(), cap);
    }
  }
}

TEST(OptionsBehaviorTest, ExecutionBudgetStopsEarly) {
  TpchFixture f = TpchFixture::Make();
  PaleoOptions options;
  options.max_query_executions = 1;
  options.validation_strategy = ValidationStrategy::kRanked;
  Paleo paleo(&f.table, options);
  auto report = paleo.Run(f.query.list);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->executed_queries, 2);  // 1 per validation pass
}

TEST(OptionsBehaviorTest, MinCountAggregatesAreOptIn) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  TopKQuery hidden;
  hidden.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                     Value::String("CA"));
  hidden.expr = RankExpr::Column(schema.FieldIndex("sms"));
  hidden.agg = AggFn::kMin;
  hidden.order = SortOrder::kAsc;
  hidden.k = 5;
  Executor ex;
  auto list = ex.Execute(*table, hidden, ExecContext{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 5u);

  PaleoOptions off;  // default: min/count disabled
  Paleo without(&*table, off);
  auto r_without = without.Run(*list);
  ASSERT_TRUE(r_without.ok());

  PaleoOptions on;
  on.enable_min_count = true;
  Paleo with(&*table, on);
  auto r_with = with.Run(*list);
  ASSERT_TRUE(r_with.ok());
  EXPECT_TRUE(r_with->found());
  // With the extension on, the min criterion is found; without it the
  // list may or may not be explainable by other criteria, but the
  // extension must strictly widen the search.
  EXPECT_GE(r_with->candidate_queries, r_without->candidate_queries);
}

}  // namespace
}  // namespace paleo
