// End-to-end integration tests: the full PALEO pipeline reverse
// engineering known queries on all three generated relations, with
// complete R' and with samples.

#include <gtest/gtest.h>

#include "datagen/augment.h"
#include "datagen/ssb_gen.h"
#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace {

/// Executes `found` and the hidden `truth` and checks
/// instance-equivalence of their results (the paper's validity
/// criterion — the found query need not be syntactically identical).
void ExpectInstanceEquivalent(const Table& table, const TopKQuery& found,
                              const TopKList& input) {
  Executor ex;
  auto result = ex.Execute(table, found, ExecContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->InstanceEquals(input))
      << "query " << found.ToSql(table.schema())
      << " does not regenerate the input\ngot:\n"
      << result->ToString() << "\nwant:\n"
      << input.ToString();
}

TEST(PaleoE2eTest, PaperIntroductionExample) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());

  TopKList input;  // Table 2 of the paper
  input.Append("Lara Ellis", 784);
  input.Append("Jane O'Neal", 699);
  input.Append("John Smith", 654);
  input.Append("Richard Fox", 596);
  input.Append("Jack Stiles", 586);

  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(input);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  ExpectInstanceEquivalent(*table, report->valid[0].query, input);
  // The discovered query constrains to California and ranks by
  // max(minutes).
  const Schema& schema = table->schema();
  std::string sql = report->valid[0].query.ToSql(schema);
  EXPECT_NE(sql.find("max(minutes)"), std::string::npos) << sql;
  // A handful of executions at most (the paper reports ~1-2).
  EXPECT_LE(report->executed_queries, 5);
  EXPECT_GT(report->candidate_predicates, 0);
  EXPECT_GT(report->tuple_sets, 0);
}

struct E2eCase {
  QueryFamily family;
  int predicate_size;
  int k;
};

class PaleoWorkloadE2eTest : public ::testing::TestWithParam<E2eCase> {};

TEST_P(PaleoWorkloadE2eTest, RecoversGeneratedQueriesOnTpch) {
  const E2eCase param = GetParam();
  TpchGenOptions gen;
  gen.scale_factor = 0.003;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());

  WorkloadOptions wl;
  wl.families = {param.family};
  wl.predicate_sizes = {param.predicate_size};
  wl.ks = {param.k};
  wl.queries_per_config = 2;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty()) << "workload generation failed";

  Paleo paleo(&*table, PaleoOptions{});
  for (const WorkloadQuery& wq : *workload) {
    auto report = paleo.Run(wq.list);
    ASSERT_TRUE(report.ok()) << wq.name;
    ASSERT_TRUE(report->found())
        << wq.name << ": " << wq.query.ToSql(table->schema());
    ExpectInstanceEquivalent(*table, report->valid[0].query, wq.list);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryShapes, PaleoWorkloadE2eTest,
    ::testing::Values(E2eCase{QueryFamily::kMaxA, 1, 10},
                      E2eCase{QueryFamily::kMaxA, 2, 5},
                      E2eCase{QueryFamily::kAvgA, 1, 10},
                      E2eCase{QueryFamily::kSumA, 1, 10},
                      E2eCase{QueryFamily::kSumAB, 1, 5},
                      E2eCase{QueryFamily::kSumAB, 2, 10},
                      E2eCase{QueryFamily::kMulAB, 1, 5},
                      E2eCase{QueryFamily::kNone, 1, 10}),
    [](const ::testing::TestParamInfo<E2eCase>& info) {
      const char* family = "";
      switch (info.param.family) {
        case QueryFamily::kMaxA:
          family = "maxA";
          break;
        case QueryFamily::kAvgA:
          family = "avgA";
          break;
        case QueryFamily::kSumA:
          family = "sumA";
          break;
        case QueryFamily::kSumAB:
          family = "sumAplusB";
          break;
        case QueryFamily::kMulAB:
          family = "sumAtimesB";
          break;
        case QueryFamily::kNone:
          family = "none";
          break;
      }
      return std::string(family) + "_P" +
             std::to_string(info.param.predicate_size) + "_k" +
             std::to_string(info.param.k);
    });

TEST(PaleoE2eTest, RecoversQueriesOnSsb) {
  SsbGenOptions gen;
  gen.scale_factor = 0.002;
  auto table = SsbGen::Generate(gen);
  ASSERT_TRUE(table.ok());

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA, QueryFamily::kSumAB};
  wl.predicate_sizes = {1, 2};
  wl.ks = {5};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());

  Paleo paleo(&*table, PaleoOptions{});
  for (const WorkloadQuery& wq : *workload) {
    auto report = paleo.Run(wq.list);
    ASSERT_TRUE(report.ok()) << wq.name;
    ASSERT_TRUE(report->found()) << wq.name;
    ExpectInstanceEquivalent(*table, report->valid[0].query, wq.list);
  }
}

TEST(PaleoE2eTest, ValidationDominatesStepTimes) {
  TpchGenOptions gen;
  gen.scale_factor = 0.003;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA};
  wl.predicate_sizes = {2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());

  // Scan-based validation (the paper's profile): disable the secondary
  // indexes so every execution reads all of R, and switch off threshold
  // pruning and aggregate sharing — both legitimately shrink
  // rows_scanned, but this test measures the unoptimized full-scan
  // profile that the rows_scanned >= executions * |R| bound encodes.
  PaleoOptions options;
  options.use_dimension_index = false;
  options.threshold_pruning = false;
  options.share_aggregates = false;
  Paleo paleo(&*table, options);
  auto report = paleo.Run((*workload)[0].list);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  // Step 3 scans all of R once per executed candidate, while steps 1-2
  // only ever touch the small slice R' — the architectural reason the
  // paper's Figure 7 shows validation dominating. (The wall-clock
  // ratio only emerges at larger scales, so assert the row counts.)
  EXPECT_GT(report->timings.validation_ms, 0.0);
  EXPECT_GE(paleo.executor()->stats().rows_scanned,
            report->executed_queries *
                static_cast<int64_t>(table->num_rows()));
  EXPECT_LT(report->rprime_rows,
            static_cast<int64_t>(table->num_rows()) / 10);
}

TEST(PaleoE2eTest, SampledRunRecoversSingleColumnQuery) {
  TpchGenOptions gen;
  gen.scale_factor = 0.002;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA};
  wl.predicate_sizes = {1};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());
  const WorkloadQuery& wq = (*workload)[0];

  Paleo paleo(&*table, PaleoOptions{});
  auto sample = Sampler::UniformPerEntity(
      paleo.index(), wq.list.DistinctEntities(), 0.3, 99);
  ASSERT_TRUE(sample.ok());
  auto report = paleo.RunOnSample(wq.list, *sample, 0.3);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found()) << wq.query.ToSql(table->schema());
  ExpectInstanceEquivalent(*table, report->valid[0].query, wq.list);
}

TEST(PaleoE2eTest, KeepCandidatesReturnsScoredList) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  TopKList input;
  input.Append("Lara Ellis", 784);
  input.Append("Jane O'Neal", 699);
  input.Append("John Smith", 654);
  input.Append("Richard Fox", 596);
  input.Append("Jack Stiles", 586);
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(input, /*keep_candidates=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(static_cast<int64_t>(report->candidates.size()),
            report->candidate_queries);
  ASSERT_FALSE(report->candidates.empty());
  EXPECT_GE(report->candidates.front().suitability,
            report->candidates.back().suitability);
}

TEST(PaleoE2eTest, RecoversAscendingOrderQuery) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  TopKQuery hidden;
  hidden.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                     Value::String("CA"));
  hidden.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  hidden.agg = AggFn::kMin;
  hidden.order = SortOrder::kAsc;
  hidden.k = 5;
  Executor ex;
  auto list = ex.Execute(*table, hidden, ExecContext{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 5u);
  // Values ascend; the pipeline must detect the direction.
  ASSERT_LT(list->entry(0).value, list->entry(4).value);

  PaleoOptions options;
  options.enable_min_count = true;
  Paleo paleo(&*table, options);
  auto report = paleo.Run(*list);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  EXPECT_EQ(report->valid[0].query.order, SortOrder::kAsc);
  ExpectInstanceEquivalent(*table, report->valid[0].query, *list);
}

TEST(PaleoE2eTest, DeterministicAcrossIdenticalRuns) {
  TpchGenOptions gen;
  gen.scale_factor = 0.002;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  WorkloadOptions wl;
  wl.families = {QueryFamily::kSumAB};
  wl.predicate_sizes = {2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());

  Paleo a(&*table, PaleoOptions{});
  Paleo b(&*table, PaleoOptions{});
  auto ra = a.Run((*workload)[0].list, /*keep_candidates=*/true);
  auto rb = b.Run((*workload)[0].list, /*keep_candidates=*/true);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->executed_queries, rb->executed_queries);
  ASSERT_EQ(ra->candidates.size(), rb->candidates.size());
  for (size_t i = 0; i < ra->candidates.size(); ++i) {
    EXPECT_TRUE(ra->candidates[i].query == rb->candidates[i].query) << i;
  }
  ASSERT_EQ(ra->valid.size(), rb->valid.size());
  for (size_t i = 0; i < ra->valid.size(); ++i) {
    EXPECT_TRUE(ra->valid[i].query == rb->valid[i].query);
  }
}

TEST(PaleoE2eTest, PartialMatchRecoversFromDriftedData) {
  TrafficGenOptions gen;
  gen.num_customers = 120;
  gen.months_per_customer = 8;
  gen.seed = 5;
  auto yesterday = TrafficGen::Generate(gen);
  ASSERT_TRUE(yesterday.ok());
  const Schema& schema = yesterday->schema();
  TopKQuery hidden;
  hidden.predicate = Predicate::Atom(schema.FieldIndex("plan"),
                                     Value::String("XL"));
  hidden.expr = RankExpr::Column(schema.FieldIndex("data_mb"));
  hidden.agg = AggFn::kSum;
  hidden.k = 10;
  Executor ex;
  auto input = ex.Execute(*yesterday, hidden, ExecContext{});
  ASSERT_TRUE(input.ok());
  ASSERT_EQ(input->size(), 10u);

  PerturbOptions drift;
  drift.row_change_probability = 0.03;
  drift.seed = 11;
  auto today = PerturbDimensions(*yesterday, drift);
  ASSERT_TRUE(today.ok());

  PaleoOptions options;
  options.match_mode = MatchMode::kPartial;
  options.partial_min_entity_jaccard = 0.5;
  options.partial_max_value_distance = 0.25;
  Paleo paleo(&*today, options);
  std::vector<RowId> all_rows(today->num_rows());
  for (size_t r = 0; r < today->num_rows(); ++r) {
    all_rows[r] = static_cast<RowId>(r);
  }
  // Sample semantics with relaxed coverage: R' is untrusted.
  auto report = paleo.RunOnSample(*input, all_rows, 1.0,
                                  /*keep_candidates=*/false,
                                  /*coverage_ratio_override=*/0.7);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  // The accepted query's result is genuinely similar to the input.
  auto result = ex.Execute(*today, report->valid[0].query, ExecContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->EntityJaccard(*input), 0.5);
}

TEST(PaleoE2eTest, NoValidQueryForForeignList) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  TopKList input;
  input.Append("Lara Ellis", 1.0);
  input.Append("Jane O'Neal", 0.5);
  input.Append("John Smith", 0.25);
  input.Append("Richard Fox", 0.125);
  input.Append("Jack Stiles", 0.0625);
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(input);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->found());
}

}  // namespace
}  // namespace paleo
