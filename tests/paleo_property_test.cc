// Property tests of the full pipeline on randomized tiny relations:
// for every hidden query that produced an input list, a complete-R'
// run must recover SOME instance-equivalent query (the paper's
// completeness guarantee), regardless of schema shape, data skew, or
// query family — and the smart and ranked validators must agree on
// discoverability.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "paleo/paleo.h"

namespace paleo {
namespace {

/// A randomized small relation: 3 dimension columns with small domains
/// (lots of accidental candidate predicates), 3 measures with assorted
/// distributions, skewed tuples-per-entity.
Table RandomTable(uint64_t seed) {
  Rng rng(seed);
  auto schema = Schema::Make({
      {"who", DataType::kString, FieldRole::kEntity},
      {"d1", DataType::kString, FieldRole::kDimension},
      {"d2", DataType::kString, FieldRole::kDimension},
      {"d3", DataType::kInt64, FieldRole::kDimension},
      {"m1", DataType::kInt64, FieldRole::kMeasure},
      {"m2", DataType::kDouble, FieldRole::kMeasure},
      {"m3", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  int num_entities = 8 + static_cast<int>(rng.Uniform(10));
  int d1_domain = 2 + static_cast<int>(rng.Uniform(4));
  int d2_domain = 2 + static_cast<int>(rng.Uniform(6));
  int d3_domain = 2 + static_cast<int>(rng.Uniform(3));
  for (int e = 0; e < num_entities; ++e) {
    int rows = 2 + static_cast<int>(rng.Uniform(8));
    for (int r = 0; r < rows; ++r) {
      EXPECT_TRUE(
          t.AppendRow(
               {Value::String("who" + std::to_string(e)),
                Value::String("a" + std::to_string(rng.Uniform(
                                        static_cast<uint64_t>(d1_domain)))),
                Value::String("b" + std::to_string(rng.Uniform(
                                        static_cast<uint64_t>(d2_domain)))),
                Value::Int64(static_cast<int64_t>(
                    rng.Uniform(static_cast<uint64_t>(d3_domain)))),
                Value::Int64(rng.UniformInt(0, 1000)),
                Value::Double(rng.UniformDouble(-50.0, 50.0)),
                Value::Int64(rng.UniformInt(0, 5))})  // heavy ties
              .ok());
    }
  }
  return t;
}

/// A random hidden query guaranteed non-empty (anchored on a row).
TopKQuery RandomQuery(const Table& table, Rng* rng) {
  const Schema& schema = table.schema();
  const auto& dims = schema.dimension_indices();
  const auto& measures = schema.measure_indices();
  TopKQuery q;
  int pred_size = static_cast<int>(rng->Uniform(3));  // 0..2 atoms
  RowId anchor = static_cast<RowId>(
      rng->Uniform(static_cast<uint64_t>(table.num_rows())));
  std::vector<AtomicPredicate> atoms;
  std::vector<uint32_t> cols = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(dims.size()),
      static_cast<uint32_t>(pred_size));
  for (uint32_t ci : cols) {
    atoms.emplace_back(dims[ci], table.GetValue(anchor, dims[ci]));
  }
  q.predicate = Predicate(std::move(atoms));
  int a = measures[static_cast<size_t>(
      rng->Uniform(static_cast<uint64_t>(measures.size())))];
  int b = measures[static_cast<size_t>(
      rng->Uniform(static_cast<uint64_t>(measures.size())))];
  switch (rng->Uniform(6)) {
    case 0:
      q.expr = RankExpr::Column(a);
      q.agg = AggFn::kMax;
      break;
    case 1:
      q.expr = RankExpr::Column(a);
      q.agg = AggFn::kAvg;
      break;
    case 2:
      q.expr = RankExpr::Column(a);
      q.agg = AggFn::kSum;
      break;
    case 3:
      q.expr = a == b ? RankExpr::Column(a) : RankExpr::Add(a, b);
      q.agg = AggFn::kSum;
      break;
    case 4:
      q.expr = a == b ? RankExpr::Column(a) : RankExpr::Mul(a, b);
      q.agg = AggFn::kSum;
      break;
    default:
      q.expr = RankExpr::Column(a);
      q.agg = AggFn::kNone;
      break;
  }
  q.k = 3 + static_cast<int>(rng->Uniform(8));
  return q;
}

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, CompleteRPrimeAlwaysRecoversAQuery) {
  const uint64_t seed = GetParam();
  Table table = RandomTable(seed);
  Executor oracle;
  Rng rng(seed * 7919 + 13);
  Paleo paleo(&table, PaleoOptions{});

  int attempted = 0;
  for (int trial = 0; trial < 12; ++trial) {
    TopKQuery hidden = RandomQuery(table, &rng);
    auto list = oracle.Execute(table, hidden, ExecContext{});
    ASSERT_TRUE(list.ok());
    if (static_cast<int>(list->size()) != hidden.k) continue;  // too few
    ++attempted;

    auto report = paleo.Run(*list);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->found())
        << "not recovered: " << hidden.ToSql(table.schema())
        << "\ninput:\n"
        << list->ToString();
    // The recovered query regenerates the list exactly.
    auto regenerated = oracle.Execute(table, report->valid[0].query, ExecContext{});
    ASSERT_TRUE(regenerated.ok());
    EXPECT_TRUE(regenerated->InstanceEquals(*list))
        << "hidden:    " << hidden.ToSql(table.schema()) << "\nrecovered: "
        << report->valid[0].query.ToSql(table.schema());
  }
  EXPECT_GT(attempted, 3) << "random generator produced too few usable "
                             "queries for seed "
                          << seed;
}

TEST_P(PipelinePropertyTest, SmartAndRankedAgreeOnDiscoverability) {
  const uint64_t seed = GetParam();
  Table table = RandomTable(seed ^ 0xABCDEF);
  Executor oracle;
  Rng rng(seed * 104729 + 1);
  PaleoOptions smart_options;
  smart_options.validation_strategy = ValidationStrategy::kSmart;
  PaleoOptions ranked_options;
  ranked_options.validation_strategy = ValidationStrategy::kRanked;
  Paleo smart(&table, smart_options);
  Paleo ranked(&table, ranked_options);

  for (int trial = 0; trial < 6; ++trial) {
    TopKQuery hidden = RandomQuery(table, &rng);
    auto list = oracle.Execute(table, hidden, ExecContext{});
    ASSERT_TRUE(list.ok());
    if (static_cast<int>(list->size()) != hidden.k) continue;

    auto smart_report = smart.Run(*list);
    auto ranked_report = ranked.Run(*list);
    ASSERT_TRUE(smart_report.ok());
    ASSERT_TRUE(ranked_report.ok());
    EXPECT_EQ(smart_report->found(), ranked_report->found());
    if (smart_report->found() && ranked_report->found()) {
      // Both recovered queries regenerate the input (they may differ).
      for (const ReverseEngineerReport* report :
           {&*smart_report, &*ranked_report}) {
        auto regenerated = oracle.Execute(table, report->valid[0].query, ExecContext{});
        ASSERT_TRUE(regenerated.ok());
        EXPECT_TRUE(regenerated->InstanceEquals(*list));
      }
      // (No execution-count assertion: smart may skip a valid query
      // into a later pass and occasionally execute more than ranked.)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRelations, PipelinePropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace paleo
