// Tests for Algorithm 1 (candidate predicate mining): correctness,
// completeness, downward closure, grouping, and relaxed coverage.

#include <gtest/gtest.h>

#include <set>

#include "datagen/traffic_gen.h"
#include "paleo/predicate_miner.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;
  TopKList list;
  RPrime rprime;

  static Fixture Make(const TopKList& list) {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    auto rp = RPrime::Build(table, index, list);
    EXPECT_TRUE(rp.ok());
    return Fixture{std::move(table), std::move(index), list,
                   *std::move(rp)};
  }
};

TopKList PaperList() {
  TopKList l;
  l.Append("Lara Ellis", 784);
  l.Append("Jane O'Neal", 699);
  l.Append("John Smith", 654);
  l.Append("Richard Fox", 596);
  l.Append("Jack Stiles", 586);
  return l;
}

/// Reference check of Definition 1 directly over the slice.
bool IsCandidate(const RPrime& rp, const Predicate& predicate) {
  std::set<uint32_t> covered;
  for (size_t r = 0; r < rp.num_rows(); ++r) {
    if (predicate.Matches(rp.table(), static_cast<RowId>(r))) {
      covered.insert(rp.row_entity()[r]);
    }
  }
  return static_cast<int>(covered.size()) == rp.num_entities();
}

TEST(PredicateMinerTest, FindsThePaperPredicates) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());

  // All five customers are CA/XL, so state='CA', plan='XL', and their
  // conjunction must all be candidates.
  const Schema& schema = f.table.schema();
  Predicate ca = Predicate::Atom(schema.FieldIndex("state"),
                                 Value::String("CA"));
  Predicate xl = Predicate::Atom(schema.FieldIndex("plan"),
                                 Value::String("XL"));
  auto ca_xl = ca.And(xl.atoms().front());
  ASSERT_TRUE(ca_xl.ok());

  std::set<std::string> mined;
  for (const MinedPredicate& p : result->predicates) {
    mined.insert(p.predicate.ToSql(schema));
  }
  EXPECT_TRUE(mined.count(ca.ToSql(schema))) << "missing state='CA'";
  EXPECT_TRUE(mined.count(xl.ToSql(schema))) << "missing plan='XL'";
  EXPECT_TRUE(mined.count(ca_xl->ToSql(schema)));
  // City predicates cannot cover five customers in five cities.
  for (const MinedPredicate& p : result->predicates) {
    for (const AtomicPredicate& atom : p.predicate.atoms()) {
      EXPECT_NE(atom.column, schema.FieldIndex("city"));
    }
  }
}

TEST(PredicateMinerTest, AllMinedPredicatesSatisfyDefinition1) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->predicates.empty());
  for (const MinedPredicate& p : result->predicates) {
    EXPECT_TRUE(IsCandidate(f.rprime, p.predicate))
        << p.predicate.ToSql(f.table.schema());
    EXPECT_EQ(p.covered_entities, f.rprime.num_entities());
  }
}

TEST(PredicateMinerTest, CompleteForAtomicAndPairs) {
  // Exhaustively enumerate atomic and 2-atom predicates over the slice
  // and verify the miner found every candidate.
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  options.max_predicate_size = 2;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());

  std::set<uint64_t> mined_hashes;
  for (const MinedPredicate& p : result->predicates) {
    mined_hashes.insert(p.predicate.Hash());
  }

  const Schema& schema = f.table.schema();
  const Table& slice = f.rprime.table();
  const auto& dims = schema.dimension_indices();
  // Collect the distinct values of each dimension column in the slice.
  std::vector<std::vector<Value>> values(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    std::set<std::string> seen;
    for (size_t r = 0; r < slice.num_rows(); ++r) {
      Value v = slice.GetValue(static_cast<RowId>(r), dims[d]);
      if (seen.insert(v.ToString()).second) values[d].push_back(v);
    }
  }
  int checked = 0;
  for (size_t d1 = 0; d1 < dims.size(); ++d1) {
    for (const Value& v1 : values[d1]) {
      Predicate atom = Predicate::Atom(dims[d1], v1);
      EXPECT_EQ(mined_hashes.count(atom.Hash()) > 0,
                IsCandidate(f.rprime, atom))
          << atom.ToSql(schema);
      for (size_t d2 = d1 + 1; d2 < dims.size(); ++d2) {
        for (const Value& v2 : values[d2]) {
          auto pair = atom.And({dims[d2], v2});
          ASSERT_TRUE(pair.ok());
          EXPECT_EQ(mined_hashes.count(pair->Hash()) > 0,
                    IsCandidate(f.rprime, *pair))
              << pair->ToSql(schema);
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(PredicateMinerTest, DownwardClosureHolds) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  std::set<uint64_t> mined_hashes;
  for (const MinedPredicate& p : result->predicates) {
    mined_hashes.insert(p.predicate.Hash());
  }
  // Every sub-predicate of a mined predicate must itself be mined.
  for (const MinedPredicate& p : result->predicates) {
    if (p.predicate.size() < 2) continue;
    for (const AtomicPredicate& drop : p.predicate.atoms()) {
      std::vector<AtomicPredicate> rest;
      for (const AtomicPredicate& a : p.predicate.atoms()) {
        if (!(a == drop)) rest.push_back(a);
      }
      EXPECT_TRUE(mined_hashes.count(Predicate(rest).Hash()))
          << "missing sub-predicate of "
          << p.predicate.ToSql(f.table.schema());
    }
  }
}

TEST(PredicateMinerTest, NoDuplicatePredicates) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  std::set<uint64_t> hashes;
  for (const MinedPredicate& p : result->predicates) {
    EXPECT_TRUE(hashes.insert(p.predicate.Hash()).second)
        << "duplicate: " << p.predicate.ToSql(f.table.schema());
  }
}

TEST(PredicateMinerTest, GroupsShareIdenticalTupleSets) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  // state='CA', plan='XL', and their conjunction select all 8 slice
  // rows, so they must share one group (Figure 3's scenario).
  const Schema& schema = f.table.schema();
  int group_ca = -1, group_xl = -1, group_both = -1;
  for (const MinedPredicate& p : result->predicates) {
    std::string sql = p.predicate.ToSql(schema);
    if (sql == "state = 'CA'") group_ca = p.group_id;
    if (sql == "plan = 'XL'") group_xl = p.group_id;
    if (sql == "state = 'CA' AND plan = 'XL'") group_both = p.group_id;
  }
  ASSERT_GE(group_ca, 0);
  ASSERT_GE(group_xl, 0);
  ASSERT_GE(group_both, 0);
  EXPECT_EQ(group_ca, group_xl);
  EXPECT_EQ(group_ca, group_both);
  EXPECT_LT(static_cast<size_t>(result->groups.size()),
            result->predicates.size() + 1);
  // Group bookkeeping is consistent.
  for (size_t g = 0; g < result->groups.size(); ++g) {
    for (int pid : result->groups[g].predicate_ids) {
      EXPECT_EQ(result->predicates[static_cast<size_t>(pid)].group_id,
                static_cast<int>(g));
    }
    EXPECT_EQ(result->groups[g].covered_entities,
              f.rprime.num_entities());
  }
}

TEST(PredicateMinerTest, MaxSizeCapsSearch) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  options.max_predicate_size = 1;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  for (const MinedPredicate& p : result->predicates) {
    // Atoms only, plus the optional empty conjunction.
    EXPECT_LE(p.predicate.size(), 1);
  }
}

TEST(PredicateMinerTest, EmptyPredicateCandidateIsOptional) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions with;
  with.include_empty_predicate = true;
  auto with_result = PredicateMiner(f.rprime, with).Mine();
  ASSERT_TRUE(with_result.ok());
  bool has_true = false;
  for (const MinedPredicate& p : with_result->predicates) {
    if (p.predicate.IsTrue()) {
      has_true = true;
      // It selects every slice row and covers every entity.
      const PredicateGroup& g =
          with_result->groups[static_cast<size_t>(p.group_id)];
      EXPECT_EQ(g.rows.size(), f.rprime.num_rows());
      EXPECT_EQ(p.covered_entities, f.rprime.num_entities());
    }
  }
  EXPECT_TRUE(has_true);

  PaleoOptions without;
  without.include_empty_predicate = false;
  auto without_result = PredicateMiner(f.rprime, without).Mine();
  ASSERT_TRUE(without_result.ok());
  for (const MinedPredicate& p : without_result->predicates) {
    EXPECT_FALSE(p.predicate.IsTrue());
  }
}

TEST(PredicateMinerTest, PredicatesBySizeCountsMatch) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  PredicateMiner miner(f.rprime, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  std::vector<int> recount(result->predicates_by_size.size(), 0);
  for (const MinedPredicate& p : result->predicates) {
    ASSERT_LT(static_cast<size_t>(p.predicate.size()), recount.size());
    ++recount[static_cast<size_t>(p.predicate.size())];
  }
  EXPECT_EQ(recount, result->predicates_by_size);
}

TEST(PredicateMinerTest, RelaxedCoverageAdmitsPartialPredicates) {
  // Lara Ellis is the only San Diego customer; with coverage 1.0 the
  // city='San Diego' predicate is not a candidate, but with a relaxed
  // ratio such partial predicates qualify.
  Fixture f = Fixture::Make(PaperList());
  const Schema& schema = f.table.schema();

  PaleoOptions strict;
  PredicateMiner strict_miner(f.rprime, strict);
  auto strict_result = strict_miner.Mine();
  ASSERT_TRUE(strict_result.ok());

  PaleoOptions relaxed;
  relaxed.coverage_ratio = 0.2;  // 1 of 5 entities suffices
  PredicateMiner relaxed_miner(f.rprime, relaxed);
  auto relaxed_result = relaxed_miner.Mine();
  ASSERT_TRUE(relaxed_result.ok());

  EXPECT_GT(relaxed_result->predicates.size(),
            strict_result->predicates.size());
  bool found_san_diego = false;
  for (const MinedPredicate& p : relaxed_result->predicates) {
    if (p.predicate.ToSql(schema) == "city = 'San Diego'") {
      found_san_diego = true;
      EXPECT_EQ(p.covered_entities, 1);
    }
  }
  EXPECT_TRUE(found_san_diego);
  // Every strict candidate is also a relaxed candidate (monotonicity).
  std::set<uint64_t> relaxed_hashes;
  for (const MinedPredicate& p : relaxed_result->predicates) {
    relaxed_hashes.insert(p.predicate.Hash());
  }
  for (const MinedPredicate& p : strict_result->predicates) {
    EXPECT_TRUE(relaxed_hashes.count(p.predicate.Hash()));
  }
}

TEST(PredicateMinerTest, InvalidOptionsRejected) {
  Fixture f = Fixture::Make(PaperList());
  PaleoOptions options;
  options.coverage_ratio = 0.0;
  EXPECT_TRUE(
      PredicateMiner(f.rprime, options).Mine().status().IsInvalidArgument());
  options.coverage_ratio = 1.0;
  options.max_predicate_size = 0;
  EXPECT_TRUE(
      PredicateMiner(f.rprime, options).Mine().status().IsInvalidArgument());
}

}  // namespace
}  // namespace paleo
