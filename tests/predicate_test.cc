// Tests for atomic/conjunctive predicates and their bound form.

#include <gtest/gtest.h>

#include "engine/predicate.h"
#include "engine/query.h"
#include "engine/rank_expr.h"

namespace paleo {
namespace {

Schema TestSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"plan", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"score", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Table TestTable() {
  Table t(TestSchema());
  struct Row {
    const char* e;
    const char* state;
    const char* plan;
    int64_t year;
    double score;
  };
  const Row rows[] = {
      {"a", "CA", "XL", 2020, 1.0}, {"b", "CA", "M", 2020, 2.0},
      {"c", "NY", "XL", 2021, 3.0}, {"d", "CA", "XL", 2021, 4.0},
      {"e", "TX", "S", 2020, 5.0},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::String(r.e), Value::String(r.state),
                             Value::String(r.plan), Value::Int64(r.year),
                             Value::Double(r.score)})
                    .ok());
  }
  return t;
}

TEST(PredicateTest, EmptyPredicateIsTrue) {
  Predicate p;
  EXPECT_TRUE(p.IsTrue());
  EXPECT_EQ(p.size(), 0);
  Table t = TestTable();
  for (RowId r = 0; r < 5; ++r) EXPECT_TRUE(p.Matches(t, r));
  EXPECT_EQ(p.ToSql(TestSchema()), "TRUE");
}

TEST(PredicateTest, AtomsAreSortedByColumn) {
  Predicate p({{3, Value::Int64(2020)}, {1, Value::String("CA")}});
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.atoms()[0].column, 1);
  EXPECT_EQ(p.atoms()[1].column, 3);
}

TEST(PredicateTest, AndRejectsSameColumn) {
  Predicate p = Predicate::Atom(1, Value::String("CA"));
  auto extended = p.And({1, Value::String("NY")});
  EXPECT_TRUE(extended.status().IsInvalidArgument());
  auto ok = p.And({2, Value::String("XL")});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2);
}

TEST(PredicateTest, MatchesRowwise) {
  Table t = TestTable();
  Predicate ca_xl({{1, Value::String("CA")}, {2, Value::String("XL")}});
  EXPECT_TRUE(ca_xl.Matches(t, 0));
  EXPECT_FALSE(ca_xl.Matches(t, 1));  // plan M
  EXPECT_FALSE(ca_xl.Matches(t, 2));  // NY
  EXPECT_TRUE(ca_xl.Matches(t, 3));
}

TEST(PredicateTest, IntDimensionEquality) {
  Table t = TestTable();
  Predicate y2021 = Predicate::Atom(3, Value::Int64(2021));
  EXPECT_FALSE(y2021.Matches(t, 0));
  EXPECT_TRUE(y2021.Matches(t, 2));
  EXPECT_TRUE(y2021.Matches(t, 3));
}

TEST(PredicateTest, SubsetAndOverlap) {
  Predicate small = Predicate::Atom(1, Value::String("CA"));
  Predicate big({{1, Value::String("CA")}, {2, Value::String("XL")}});
  Predicate other = Predicate::Atom(3, Value::Int64(2020));
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.SubsetOf(small));
  EXPECT_TRUE(Predicate().SubsetOf(small));
  EXPECT_EQ(small.OverlapWith(big), 1);
  EXPECT_EQ(big.OverlapWith(other), 0);
  Predicate different_value = Predicate::Atom(1, Value::String("NY"));
  EXPECT_FALSE(different_value.SubsetOf(big));
  EXPECT_EQ(different_value.OverlapWith(big), 0);
}

TEST(PredicateTest, ToSqlRendersConjunction) {
  Predicate p({{1, Value::String("CA")}, {3, Value::Int64(2020)}});
  EXPECT_EQ(p.ToSql(TestSchema()), "state = 'CA' AND year = 2020");
}

TEST(PredicateTest, HashAndEquality) {
  Predicate a({{1, Value::String("CA")}, {2, Value::String("XL")}});
  Predicate b({{2, Value::String("XL")}, {1, Value::String("CA")}});
  Predicate c({{1, Value::String("NY")}, {2, Value::String("XL")}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(BoundPredicateTest, MatchesLikeUnbound) {
  Table t = TestTable();
  Predicate p({{1, Value::String("CA")}, {3, Value::Int64(2020)}});
  BoundPredicate bound(p, t);
  for (RowId r = 0; r < 5; ++r) {
    EXPECT_EQ(bound.Matches(r), p.Matches(t, r)) << "row " << r;
  }
}

TEST(BoundPredicateTest, UnknownStringConstantNeverMatches) {
  Table t = TestTable();
  BoundPredicate bound(Predicate::Atom(1, Value::String("ZZ")), t);
  for (RowId r = 0; r < 5; ++r) EXPECT_FALSE(bound.Matches(r));
}

TEST(BoundPredicateTest, TypeMismatchNeverMatches) {
  Table t = TestTable();
  // String constant against an Int64 column.
  BoundPredicate bound(Predicate::Atom(3, Value::String("2020")), t);
  for (RowId r = 0; r < 5; ++r) EXPECT_FALSE(bound.Matches(r));
}

TEST(RankExprTest, EvalAndCanonicalization) {
  Table t = TestTable();
  RankExpr col = RankExpr::Column(4);
  EXPECT_EQ(col.Eval(t, 2), 3.0);
  RankExpr add_ab = RankExpr::Add(3, 4);
  RankExpr add_ba = RankExpr::Add(4, 3);
  EXPECT_EQ(add_ab, add_ba);  // commutative canonical form
  EXPECT_EQ(add_ab.Eval(t, 0), 2021.0);
  RankExpr mul = RankExpr::Mul(3, 4);
  EXPECT_EQ(mul.Eval(t, 1), 2020.0 * 2.0);
}

TEST(RankExprTest, ToSql) {
  Schema schema = TestSchema();
  EXPECT_EQ(RankExpr::Column(4).ToSql(schema), "score");
  EXPECT_EQ(RankExpr::Add(3, 4).ToSql(schema), "year + score");
  EXPECT_EQ(RankExpr::Mul(4, 3).ToSql(schema), "year * score");
}

TEST(TopKQueryTest, ToSqlFullTemplate) {
  Schema schema = TestSchema();
  TopKQuery q;
  q.predicate = Predicate({{1, Value::String("CA")}});
  q.expr = RankExpr::Column(4);
  q.agg = AggFn::kMax;
  q.k = 5;
  EXPECT_EQ(q.ToSql(schema),
            "SELECT e, max(score) FROM R WHERE state = 'CA' "
            "GROUP BY e ORDER BY max(score) DESC LIMIT 5");
}

TEST(TopKQueryTest, ToSqlNoAggregationOmitsGroupBy) {
  Schema schema = TestSchema();
  TopKQuery q;
  q.expr = RankExpr::Column(4);
  q.agg = AggFn::kNone;
  q.k = 3;
  EXPECT_EQ(q.ToSql(schema),
            "SELECT e, score FROM R ORDER BY score DESC LIMIT 3");
}

TEST(TopKQueryTest, SameRankingComparesCriterionOnly) {
  TopKQuery a, b;
  a.expr = b.expr = RankExpr::Column(4);
  a.agg = b.agg = AggFn::kSum;
  a.predicate = Predicate::Atom(1, Value::String("CA"));
  b.predicate = Predicate::Atom(2, Value::String("XL"));
  EXPECT_TRUE(a.SameRanking(b));
  b.agg = AggFn::kMax;
  EXPECT_FALSE(a.SameRanking(b));
}

}  // namespace
}  // namespace paleo
