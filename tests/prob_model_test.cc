// Tests for the Section 6 probability model.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/traffic_gen.h"
#include "paleo/predicate_miner.h"
#include "paleo/prob_model.h"
#include "paleo/sampler.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;
  StatsCatalog catalog;
  TopKList list;

  static Fixture Make() {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    StatsCatalog catalog = StatsCatalog::Build(table);
    TopKList list;
    list.Append("Lara Ellis", 784);
    list.Append("Jane O'Neal", 699);
    list.Append("John Smith", 654);
    list.Append("Richard Fox", 596);
    list.Append("Jack Stiles", 586);
    return Fixture{std::move(table), std::move(index), std::move(catalog),
                   std::move(list)};
  }
};

TEST(ProbModelTest, TupleExistsProbabilityUsesDistinctCounts) {
  Fixture f = Fixture::Make();
  auto rp = RPrime::Build(f.table, f.index, f.list);
  ASSERT_TRUE(rp.ok());
  ProbModel model(f.catalog, *rp);

  const Schema& schema = f.table.schema();
  int state = schema.FieldIndex("state");
  int plan = schema.FieldIndex("plan");
  int64_t d_state = f.catalog.column_stats(state).distinct_count;
  int64_t d_plan = f.catalog.column_stats(plan).distinct_count;
  ASSERT_GT(d_state, 1);
  ASSERT_GT(d_plan, 1);

  Predicate p_state = Predicate::Atom(state, Value::String("CA"));
  EXPECT_DOUBLE_EQ(model.TupleExistsProbability(p_state),
                   1.0 / static_cast<double>(d_state));
  auto both = p_state.And({plan, Value::String("XL")});
  ASSERT_TRUE(both.ok());
  EXPECT_DOUBLE_EQ(
      model.TupleExistsProbability(*both),
      1.0 / static_cast<double>(d_state) / static_cast<double>(d_plan));
  // Empty predicate: certainty.
  EXPECT_DOUBLE_EQ(model.TupleExistsProbability(Predicate()), 1.0);
}

TEST(ProbModelTest, FalsePositiveZeroWithFullCoverage) {
  Fixture f = Fixture::Make();
  auto rp = RPrime::Build(f.table, f.index, f.list);
  ASSERT_TRUE(rp.ok());
  PaleoOptions options;
  PredicateMiner miner(*rp, options);
  auto mining = miner.Mine();
  ASSERT_TRUE(mining.ok());
  ProbModel model(f.catalog, *rp);
  for (const MinedPredicate& p : mining->predicates) {
    const PredicateGroup& g =
        mining->groups[static_cast<size_t>(p.group_id)];
    EXPECT_DOUBLE_EQ(model.FalsePositiveProbability(p.predicate, g), 0.0);
  }
}

TEST(ProbModelTest, UncoveredEntityWithNoUnseenTuplesIsCertainFalsePositive) {
  Fixture f = Fixture::Make();
  // Full R' (no unseen tuples) but a predicate whose group misses an
  // entity: if an entity has zero unseen tuples and none of its seen
  // tuples match, the predicate is a false positive with certainty.
  auto rp = RPrime::Build(f.table, f.index, f.list);
  ASSERT_TRUE(rp.ok());
  PaleoOptions options;
  options.coverage_ratio = 0.2;
  PredicateMiner miner(*rp, options);
  auto mining = miner.Mine();
  ASSERT_TRUE(mining.ok());
  ProbModel model(f.catalog, *rp);
  bool checked = false;
  for (const MinedPredicate& p : mining->predicates) {
    const PredicateGroup& g =
        mining->groups[static_cast<size_t>(p.group_id)];
    if (g.covered_entities < rp->num_entities()) {
      EXPECT_DOUBLE_EQ(model.FalsePositiveProbability(p.predicate, g), 1.0)
          << p.predicate.ToSql(f.table.schema());
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ProbModelTest, FalsePositiveDecreasesWithMoreUnseenTuples) {
  // Under sampling, entities with many unseen tuples might still hide a
  // matching tuple, so P[fp] < 1 and shrinks as unseen grows.
  Fixture f = Fixture::Make();
  auto sample = Sampler::UniformPerEntity(
      f.index, f.list.DistinctEntities(), 0.5, 7);
  ASSERT_TRUE(sample.ok());
  auto rp = RPrime::Build(f.table, f.index, f.list, &*sample);
  ASSERT_TRUE(rp.ok());

  PaleoOptions options;
  options.coverage_ratio = 0.2;
  PredicateMiner miner(*rp, options);
  auto mining = miner.Mine();
  ASSERT_TRUE(mining.ok());
  ProbModel model(f.catalog, *rp);
  for (const MinedPredicate& p : mining->predicates) {
    const PredicateGroup& g =
        mining->groups[static_cast<size_t>(p.group_id)];
    double p_fp = model.FalsePositiveProbability(p.predicate, g);
    EXPECT_GE(p_fp, 0.0);
    EXPECT_LE(p_fp, 1.0);
    if (g.covered_entities == rp->num_entities()) {
      EXPECT_EQ(p_fp, 0.0);
    }
  }
}

TEST(ProbModelTest, SuitabilityCombinesBothFactors) {
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(0.5, 0.5), 0.25);
  // Clamped inputs.
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(-1.0, -2.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbModel::Suitability(2.0, 0.0), 0.0);
}

TEST(ProbModelTest, HypergeometricPmfBasics) {
  // Drawing 2 of 4 items, 2 marked: P[k marked] follows 2,2/6;... total
  // C(4,2)=6 draws: k=0 -> 1/6, k=1 -> 4/6, k=2 -> 1/6.
  EXPECT_NEAR(ProbModel::HypergeometricPmf(2, 4, 2, 0), 1.0 / 6, 1e-12);
  EXPECT_NEAR(ProbModel::HypergeometricPmf(2, 4, 2, 1), 4.0 / 6, 1e-12);
  EXPECT_NEAR(ProbModel::HypergeometricPmf(2, 4, 2, 2), 1.0 / 6, 1e-12);
  // Out-of-support values are zero.
  EXPECT_EQ(ProbModel::HypergeometricPmf(2, 4, 2, 3), 0.0);
  EXPECT_EQ(ProbModel::HypergeometricPmf(5, 4, 2, 1), 0.0);
}

TEST(ProbModelTest, HypergeometricPmfSumsToOne) {
  double total = 0.0;
  for (int k = 0; k <= 10; ++k) {
    total += ProbModel::HypergeometricPmf(6, 20, 10, k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProbModelTest, ProbAtLeastOneSampledMonotoneInSampleSize) {
  double prev = 0.0;
  for (int64_t n = 1; n <= 20; ++n) {
    double p = ProbModel::ProbAtLeastOneSampled(3, 20, n);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  EXPECT_NEAR(ProbModel::ProbAtLeastOneSampled(3, 20, 20), 1.0, 1e-12);
  EXPECT_EQ(ProbModel::ProbAtLeastOneSampled(0, 20, 10), 0.0);
}

TEST(ProbModelTest, ProbAllEntitiesCoveredPowersUp) {
  double one = ProbModel::ProbAtLeastOneSampled(2, 30, 10);
  double all = ProbModel::ProbAllEntitiesCovered(2, 30, 10, 5);
  EXPECT_NEAR(all, std::pow(one, 5), 1e-12);
  EXPECT_LT(all, one);
}

}  // namespace
}  // namespace paleo
