// Tests for the range-predicate extension (BETWEEN atoms): predicate
// semantics, the tightest-covering-interval miner, SQL round trips,
// and end-to-end recovery of a hidden range query.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/sql_parser.h"
#include "paleo/paleo.h"
#include "paleo/predicate_miner.h"

namespace paleo {
namespace {

Schema RangeSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"rate", DataType::kDouble, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Table RangeTable() {
  Table t(RangeSchema());
  struct Row {
    const char* e;
    const char* state;
    int64_t year;
    double rate;
    int64_t v;
  };
  const Row rows[] = {
      {"a", "CA", 1992, 0.1, 10}, {"a", "CA", 1995, 0.3, 20},
      {"b", "CA", 1994, 0.2, 30}, {"b", "NY", 1998, 0.9, 40},
      {"c", "NY", 1995, 0.4, 50}, {"c", "CA", 1993, 0.2, 60},
      {"d", "TX", 1996, 0.5, 70},
  };
  for (const Row& r : rows) {
    EXPECT_TRUE(t.AppendRow({Value::String(r.e), Value::String(r.state),
                             Value::Int64(r.year), Value::Double(r.rate),
                             Value::Int64(r.v)})
                    .ok());
  }
  return t;
}

TEST(RangePredicateTest, MatchesInclusiveBounds) {
  Table t = RangeTable();
  Predicate p({AtomicPredicate::Range(2, Value::Int64(1993),
                                      Value::Int64(1995))});
  // Rows with year in [1993, 1995]: indices 1, 2, 4, 5.
  EXPECT_FALSE(p.Matches(t, 0));  // 1992
  EXPECT_TRUE(p.Matches(t, 1));   // 1995 (inclusive upper)
  EXPECT_TRUE(p.Matches(t, 2));   // 1994
  EXPECT_FALSE(p.Matches(t, 3));  // 1998
  EXPECT_TRUE(p.Matches(t, 5));   // 1993 (inclusive lower)

  BoundPredicate bound(p, t);
  for (RowId r = 0; r < 7; ++r) {
    EXPECT_EQ(bound.Matches(r), p.Matches(t, r)) << "row " << r;
  }
}

TEST(RangePredicateTest, DoubleColumnRanges) {
  Table t = RangeTable();
  Predicate p({AtomicPredicate::Range(3, Value::Double(0.2),
                                      Value::Double(0.4))});
  BoundPredicate bound(p, t);
  int matches = 0;
  for (RowId r = 0; r < 7; ++r) {
    EXPECT_EQ(bound.Matches(r), p.Matches(t, r));
    matches += bound.Matches(r);
  }
  EXPECT_EQ(matches, 4);  // rates 0.3, 0.2, 0.4, 0.2
}

TEST(RangePredicateTest, MixedConjunction) {
  Table t = RangeTable();
  Predicate p({AtomicPredicate(1, Value::String("CA")),
               AtomicPredicate::Range(2, Value::Int64(1993),
                                      Value::Int64(1995))});
  BoundPredicate bound(p, t);
  std::vector<RowId> matching;
  for (RowId r = 0; r < 7; ++r) {
    if (bound.Matches(r)) matching.push_back(r);
  }
  EXPECT_EQ(matching, (std::vector<RowId>{1, 2, 5}));
  EXPECT_EQ(p.ToSql(t.schema()),
            "state = 'CA' AND year BETWEEN 1993 AND 1995");
}

TEST(RangePredicateTest, EqualityAndHashDistinguishBounds) {
  AtomicPredicate a =
      AtomicPredicate::Range(2, Value::Int64(1), Value::Int64(5));
  AtomicPredicate b =
      AtomicPredicate::Range(2, Value::Int64(1), Value::Int64(6));
  AtomicPredicate eq(2, Value::Int64(1));
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == eq);
  EXPECT_NE(Predicate({a}).Hash(), Predicate({b}).Hash());
  EXPECT_NE(Predicate({a}).Hash(), Predicate({eq}).Hash());
}

TEST(RangePredicateTest, RangeOnStringColumnNeverMatches) {
  Table t = RangeTable();
  Predicate p({AtomicPredicate::Range(1, Value::Int64(0),
                                      Value::Int64(10))});
  BoundPredicate bound(p, t);
  for (RowId r = 0; r < 7; ++r) EXPECT_FALSE(bound.Matches(r));
}

TEST(RangeMinerTest, FindsTightestCoveringInterval) {
  Table t = RangeTable();
  EntityIndex index = EntityIndex::Build(t);
  TopKList list;  // all four entities
  list.Append("a", 1);
  list.Append("b", 2);
  list.Append("c", 3);
  list.Append("d", 4);
  auto rp = RPrime::Build(t, index, list);
  ASSERT_TRUE(rp.ok());

  PaleoOptions options;
  options.mine_range_predicates = true;
  options.include_empty_predicate = false;
  PredicateMiner miner(*rp, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());

  // Years per entity: a{1992,1995} b{1994,1998} c{1995,1993} d{1996}.
  // The tightest interval covering all four is [1994, 1996]
  // (a:1995, b:1994, c:1995, d:1996) with width 2.
  bool found = false;
  for (const MinedPredicate& p : result->predicates) {
    if (p.predicate.size() != 1) continue;
    const AtomicPredicate& atom = p.predicate.atoms()[0];
    if (!atom.is_range() || atom.column != 2) continue;
    found = true;
    EXPECT_EQ(atom.value, Value::Int64(1994));
    EXPECT_EQ(atom.high, Value::Int64(1996));
    EXPECT_EQ(p.covered_entities, 4);
  }
  EXPECT_TRUE(found) << "year range atom not mined";
}

TEST(RangeMinerTest, DisabledByDefault) {
  Table t = RangeTable();
  EntityIndex index = EntityIndex::Build(t);
  TopKList list;
  list.Append("a", 1);
  list.Append("b", 2);
  auto rp = RPrime::Build(t, index, list);
  ASSERT_TRUE(rp.ok());
  PaleoOptions options;  // mine_range_predicates defaults to false
  PredicateMiner miner(*rp, options);
  auto result = miner.Mine();
  ASSERT_TRUE(result.ok());
  for (const MinedPredicate& p : result->predicates) {
    for (const AtomicPredicate& atom : p.predicate.atoms()) {
      EXPECT_FALSE(atom.is_range());
    }
  }
}

TEST(RangeSqlTest, ParseAndRenderRoundTrip) {
  Schema schema = RangeSchema();
  auto q = ParseTopKQuery(
      "SELECT e, max(v) FROM t WHERE state = 'CA' AND year BETWEEN 1993 "
      "AND 1995 GROUP BY e ORDER BY max(v) DESC LIMIT 3",
      schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicate.size(), 2);
  std::string sql = q->ToSql(schema);
  auto round = ParseTopKQuery(sql, schema);
  ASSERT_TRUE(round.ok()) << sql;
  EXPECT_TRUE(*round == *q);

  // Malformed ranges.
  EXPECT_FALSE(ParseTopKQuery(
                   "SELECT e, max(v) FROM t WHERE year BETWEEN 1995 AND "
                   "1993 GROUP BY e ORDER BY max(v) DESC LIMIT 3",
                   schema)
                   .ok());  // empty range
  EXPECT_FALSE(ParseTopKQuery(
                   "SELECT e, max(v) FROM t WHERE state BETWEEN 'A' AND "
                   "'B' GROUP BY e ORDER BY max(v) DESC LIMIT 3",
                   schema)
                   .ok());  // non-numeric column
}

TEST(RangeE2eTest, RecoversLoadBearingRangeQuery) {
  // The miner's candidate interval is the TIGHTEST one covering the
  // input entities, so a hidden range is recoverable when it is
  // load-bearing (each input entity reaches its list value only inside
  // the range, and the range's endpoints are realized). Build such a
  // scenario deterministically: each entity has exactly one row inside
  // [1994, 1996] (with both endpoints used) carrying its top value,
  // and decoy rows outside the range with even larger values.
  Table t(RangeSchema());
  Rng rng(99);
  const int kEntities = 12;
  for (int e = 0; e < kEntities; ++e) {
    std::string name = "e" + std::to_string(e);
    int64_t in_range_year = 1994 + (e % 3);  // uses 1994, 1995, 1996
    int64_t top = 1000 + e;                  // distinct in-range values
    ASSERT_TRUE(t.AppendRow({Value::String(name), Value::String("CA"),
                             Value::Int64(in_range_year),
                             Value::Double(0.5), Value::Int64(top)})
                    .ok());
    // Decoys outside the range with even larger values: the range is
    // load-bearing for the ranking.
    for (int d = 0; d < 3; ++d) {
      int64_t year = rng.Bernoulli(0.5) ? 1990 + static_cast<int64_t>(
                                                     rng.Uniform(3))
                                        : 1998 + static_cast<int64_t>(
                                                     rng.Uniform(3));
      ASSERT_TRUE(
          t.AppendRow({Value::String(name), Value::String("CA"),
                       Value::Int64(year), Value::Double(0.5),
                       Value::Int64(5000 + rng.UniformInt(0, 100))})
              .ok());
    }
  }

  TopKQuery hidden;
  hidden.predicate = Predicate({AtomicPredicate::Range(
      2, Value::Int64(1994), Value::Int64(1996))});
  hidden.expr = RankExpr::Column(4);
  hidden.agg = AggFn::kMax;
  hidden.k = 10;
  Executor ex;
  auto list = ex.Execute(t, hidden, ExecContext{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 10u);

  PaleoOptions options;
  options.mine_range_predicates = true;
  Paleo paleo(&t, options);
  auto report = paleo.Run(*list);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  auto regenerated = ex.Execute(t, report->valid[0].query, ExecContext{});
  ASSERT_TRUE(regenerated.ok());
  EXPECT_TRUE(regenerated->InstanceEquals(*list))
      << "hidden:    " << hidden.ToSql(t.schema()) << "\nrecovered: "
      << report->valid[0].query.ToSql(t.schema());
  // The recovered query actually uses a range atom (no equality-only
  // query explains this list: every single-year predicate misses
  // entities).
  bool uses_range = false;
  for (const AtomicPredicate& atom :
       report->valid[0].query.predicate.atoms()) {
    uses_range |= atom.is_range();
  }
  EXPECT_TRUE(uses_range)
      << report->valid[0].query.ToSql(t.schema());
}

}  // namespace
}  // namespace paleo
