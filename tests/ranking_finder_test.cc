// Tests for ranking criteria identification (Section 5 / Figure 4).

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "engine/executor.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"
#include "stats/catalog.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;
  StatsCatalog catalog;
  RPrime rprime;
  MiningResult mining;
  PaleoOptions options;

  static Fixture Make(const TopKList& list, PaleoOptions options = {}) {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    StatsCatalog catalog = StatsCatalog::Build(table);
    auto rp = RPrime::Build(table, index, list);
    EXPECT_TRUE(rp.ok());
    RPrime rprime = *std::move(rp);
    PredicateMiner miner(rprime, options);
    auto mining = miner.Mine();
    EXPECT_TRUE(mining.ok());
    return Fixture{std::move(table), std::move(index), std::move(catalog),
                   std::move(rprime), *std::move(mining), options};
  }
};

TopKList PaperList() {
  TopKList l;
  l.Append("Lara Ellis", 784);
  l.Append("Jane O'Neal", 699);
  l.Append("John Smith", 654);
  l.Append("Richard Fox", 596);
  l.Append("Jack Stiles", 586);
  return l;
}

TEST(RankingFinderTest, IdentifiesMaxMinutesExactly) {
  Fixture f = Fixture::Make(PaperList());
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  RankingSearchInfo info;
  auto rankings = finder.Find(f.mining.groups, PaperList(),
                              /*assume_complete=*/true, &info);
  ASSERT_TRUE(rankings.ok());

  int minutes = f.table.schema().FieldIndex("minutes");
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      EXPECT_TRUE(c.exact);
      EXPECT_EQ(c.distance, 0.0);
      if (c.agg == AggFn::kMax && c.expr == RankExpr::Column(minutes)) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "max(minutes) not identified";
  // The paper-list values come straight from the minutes column's top
  // entities, so the cheap technique should have carried the day.
  EXPECT_TRUE(info.used_top_entities);
}

TEST(RankingFinderTest, NoCandidatesForUnrelatedValues) {
  // A list whose values match no column aggregation.
  TopKList bogus;
  bogus.Append("Lara Ellis", 123456.0);
  bogus.Append("Jane O'Neal", 123455.0);
  bogus.Append("John Smith", 123454.0);
  bogus.Append("Richard Fox", 123453.0);
  bogus.Append("Jack Stiles", 123452.0);
  Fixture f = Fixture::Make(bogus);
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, bogus,
                              /*assume_complete=*/true);
  ASSERT_TRUE(rankings.ok());
  for (const GroupRanking& gr : *rankings) {
    EXPECT_TRUE(gr.candidates.empty());
  }
}

TEST(RankingFinderTest, SumCriterionIdentified) {
  // Build an input list from a sum(minutes) query.
  auto t = TrafficGen::PaperExample();
  ASSERT_TRUE(t.ok());
  const Schema& schema = t->schema();
  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                Value::String("CA"));
  q.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  q.agg = AggFn::kSum;
  q.k = 5;
  auto list = ex.Execute(*t, q, ExecContext{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 5u);

  Fixture f = Fixture::Make(*list);
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, *list,
                              /*assume_complete=*/true);
  ASSERT_TRUE(rankings.ok());
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      if (c.agg == AggFn::kSum &&
          c.expr == RankExpr::Column(schema.FieldIndex("minutes"))) {
        found = c.exact;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(RankingFinderTest, TwoColumnSumIdentified) {
  auto t = TrafficGen::PaperExample();
  ASSERT_TRUE(t.ok());
  const Schema& schema = t->schema();
  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                Value::String("CA"));
  q.expr = RankExpr::Add(schema.FieldIndex("minutes"),
                         schema.FieldIndex("sms"));
  q.agg = AggFn::kSum;
  q.k = 5;
  auto list = ex.Execute(*t, q, ExecContext{});
  ASSERT_TRUE(list.ok());

  Fixture f = Fixture::Make(*list);
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, *list,
                              /*assume_complete=*/true);
  ASSERT_TRUE(rankings.ok());
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      if (c.agg == AggFn::kSum && c.expr == q.expr) found = c.exact;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RankingFinderTest, NoAggregationIdentified) {
  auto t = TrafficGen::PaperExample();
  ASSERT_TRUE(t.ok());
  const Schema& schema = t->schema();
  Executor ex;
  TopKQuery q;
  q.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                Value::String("CA"));
  q.expr = RankExpr::Column(schema.FieldIndex("data_mb"));
  q.agg = AggFn::kNone;
  q.k = 6;
  auto list = ex.Execute(*t, q, ExecContext{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 6u);

  Fixture f = Fixture::Make(*list);
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, *list,
                              /*assume_complete=*/true);
  ASSERT_TRUE(rankings.ok());
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      if (c.agg == AggFn::kNone && c.expr == q.expr) found = c.exact;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RankingFinderTest, SampledModeScoresAllCriteria) {
  Fixture f = Fixture::Make(PaperList());
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, PaperList(),
                              /*assume_complete=*/false);
  ASSERT_TRUE(rankings.ok());
  // In sampled mode nothing is filtered: each group carries scored
  // candidates for single columns and pairs.
  for (const GroupRanking& gr : *rankings) {
    EXPECT_GT(gr.candidates.size(), 3u);
    bool some_exact = false;
    for (const RankingCandidate& c : gr.candidates) {
      EXPECT_GE(c.distance, 0.0);
      EXPECT_LE(c.distance, 1.0);
      some_exact |= c.exact;
    }
    // The true criterion (max(minutes)) is present and exact, since
    // this "sample" is actually complete.
    EXPECT_TRUE(some_exact);
  }
}

TEST(RankingFinderTest, ExactCriterionHasSmallestDistance) {
  Fixture f = Fixture::Make(PaperList());
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find(f.mining.groups, PaperList(),
                              /*assume_complete=*/false);
  ASSERT_TRUE(rankings.ok());
  for (const GroupRanking& gr : *rankings) {
    double exact_distance = 1e9, best_distance = 1e9;
    for (const RankingCandidate& c : gr.candidates) {
      best_distance = std::min(best_distance, c.distance);
      if (c.exact) exact_distance = std::min(exact_distance, c.distance);
    }
    EXPECT_EQ(exact_distance, best_distance);
    EXPECT_NEAR(exact_distance, 0.0, 1e-12);
  }
}

TEST(RankingFinderTest, WorksWithoutCatalog) {
  Fixture f = Fixture::Make(PaperList());
  RankingFinder finder(f.rprime, nullptr, f.options);
  RankingSearchInfo info;
  auto rankings = finder.Find(f.mining.groups, PaperList(),
                              /*assume_complete=*/true, &info);
  ASSERT_TRUE(rankings.ok());
  EXPECT_FALSE(info.used_top_entities);
  EXPECT_FALSE(info.used_histograms);
  EXPECT_TRUE(info.used_fallback);
  int minutes = f.table.schema().FieldIndex("minutes");
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      found |= (c.agg == AggFn::kMax &&
                c.expr == RankExpr::Column(minutes));
    }
  }
  EXPECT_TRUE(found);
}

TEST(RankingFinderTest, EmptyGroupsYieldEmptyRankings) {
  Fixture f = Fixture::Make(PaperList());
  RankingFinder finder(f.rprime, &f.catalog, f.options);
  auto rankings = finder.Find({}, PaperList(), true);
  ASSERT_TRUE(rankings.ok());
  EXPECT_TRUE(rankings->empty());
}

}  // namespace
}  // namespace paleo
