// Tests pinning down WHICH Figure-4 technique identifies the criterion:
// the top-entity shortcut, the histogram heuristic, or the R' fallback.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "engine/executor.h"
#include "paleo/predicate_miner.h"
#include "paleo/ranking_finder.h"

namespace paleo {
namespace {

struct Pipeline {
  Table table;
  EntityIndex index;
  TopKList list;
  RPrime rprime;
  MiningResult mining;

  static Pipeline Make(const Table& source, const TopKQuery& hidden) {
    Executor ex;
    auto list = ex.Execute(source, hidden, ExecContext{});
    EXPECT_TRUE(list.ok());
    std::vector<RowId> all;  // rebuild a copy so `table` is owned here
    for (size_t r = 0; r < source.num_rows(); ++r) {
      all.push_back(static_cast<RowId>(r));
    }
    Table table = source.Gather(all);
    EntityIndex index = EntityIndex::Build(table);
    auto rp = RPrime::Build(table, index, *list);
    EXPECT_TRUE(rp.ok());
    PaleoOptions options;
    PredicateMiner miner(*rp, options);
    auto mining = miner.Mine();
    EXPECT_TRUE(mining.ok());
    return Pipeline{std::move(table), std::move(index), *std::move(list),
                    *std::move(rp), *std::move(mining)};
  }
};

TopKQuery MaxMinutesOverCa(const Schema& schema) {
  TopKQuery q;
  q.predicate =
      Predicate::Atom(schema.FieldIndex("state"), Value::String("CA"));
  q.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  q.agg = AggFn::kMax;
  q.k = 5;
  return q;
}

TEST(RankingTechniquesTest, TopEntityShortcutFiresWhenListsOverlap) {
  auto source = TrafficGen::PaperExample();
  ASSERT_TRUE(source.ok());
  Pipeline p = Pipeline::Make(*source, MaxMinutesOverCa(source->schema()));
  // Generous top-entity lists: the input's entities are certainly in
  // the per-column top lists.
  StatsCatalog catalog = StatsCatalog::Build(p.table);
  PaleoOptions options;
  RankingFinder finder(p.rprime, &catalog, options);
  RankingSearchInfo info;
  auto rankings = finder.Find(p.mining.groups, p.list, true, &info);
  ASSERT_TRUE(rankings.ok());
  EXPECT_TRUE(info.used_top_entities);
  EXPECT_FALSE(info.used_histograms);  // early exit before histograms
  EXPECT_GT(info.top_entity_candidate_columns, 0);
}

TEST(RankingTechniquesTest, HistogramHeuristicFiresWhenTopListsTooShort) {
  auto source = TrafficGen::PaperExample();
  ASSERT_TRUE(source.ok());
  Pipeline p = Pipeline::Make(*source, MaxMinutesOverCa(source->schema()));
  // Cripple the top-entity lists: with top-1 per column, the input's
  // five entities cannot all... — even one hit passes Algorithm 2's
  // non-empty-intersection test, so keep zero entries by using the
  // smallest legal list and entities that do NOT top any column.
  CatalogOptions catalog_options;
  catalog_options.top_entities = 1;
  StatsCatalog catalog = StatsCatalog::Build(p.table, catalog_options);
  // The paper example's global top by minutes is an out-of-state
  // customer (their raw minutes run to 999), so the CA customers in L
  // are not in any column's top-1 list.
  PaleoOptions options;
  RankingFinder finder(p.rprime, &catalog, options);
  RankingSearchInfo info;
  auto rankings = finder.Find(p.mining.groups, p.list, true, &info);
  ASSERT_TRUE(rankings.ok());
  EXPECT_TRUE(info.used_histograms);
  // The criterion is still found (via histograms or fallback).
  bool found = false;
  int minutes = p.table.schema().FieldIndex("minutes");
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      found |= (c.agg == AggFn::kMax &&
                c.expr == RankExpr::Column(minutes) && c.exact);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RankingTechniquesTest, FallbackAloneStillSucceeds) {
  auto source = TrafficGen::PaperExample();
  ASSERT_TRUE(source.ok());
  Pipeline p = Pipeline::Make(*source, MaxMinutesOverCa(source->schema()));
  PaleoOptions options;
  RankingFinder finder(p.rprime, /*catalog=*/nullptr, options);
  RankingSearchInfo info;
  auto rankings = finder.Find(p.mining.groups, p.list, true, &info);
  ASSERT_TRUE(rankings.ok());
  EXPECT_FALSE(info.used_top_entities);
  EXPECT_FALSE(info.used_histograms);
  EXPECT_TRUE(info.used_fallback);
  EXPECT_GT(info.tuple_set_evaluations, 0);
}

TEST(RankingTechniquesTest, SimpleChecksPruneImpossibleColumns) {
  // A list whose max exceeds every column's max passes through the
  // shortcuts without candidates and ends in the fallback, where the
  // sum aggregates (whose values can exceed single-tuple ranges) are
  // still evaluated.
  auto source = TrafficGen::PaperExample();
  ASSERT_TRUE(source.ok());
  const Schema& schema = source->schema();
  Executor ex;
  TopKQuery hidden;
  hidden.predicate =
      Predicate::Atom(schema.FieldIndex("state"), Value::String("CA"));
  hidden.expr = RankExpr::Column(schema.FieldIndex("data_mb"));
  hidden.agg = AggFn::kSum;  // sums exceed any single data_mb value
  hidden.k = 5;
  Pipeline p = Pipeline::Make(*source, hidden);
  StatsCatalog catalog = StatsCatalog::Build(p.table);
  PaleoOptions options;
  RankingFinder finder(p.rprime, &catalog, options);
  RankingSearchInfo info;
  auto rankings = finder.Find(p.mining.groups, p.list, true, &info);
  ASSERT_TRUE(rankings.ok());
  bool found = false;
  for (const GroupRanking& gr : *rankings) {
    for (const RankingCandidate& c : gr.candidates) {
      found |= (c.agg == AggFn::kSum && c.exact);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace paleo
