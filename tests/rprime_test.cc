// Tests for R' materialization.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "paleo/rprime.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;

  static Fixture Make() {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    return Fixture{std::move(table), std::move(index)};
  }
};

TopKList PaperList() {
  TopKList l;
  l.Append("Lara Ellis", 784);
  l.Append("Jane O'Neal", 699);
  l.Append("John Smith", 654);
  l.Append("Richard Fox", 596);
  l.Append("Jack Stiles", 586);
  return l;
}

TEST(RPrimeTest, GathersAllTuplesOfInputEntities) {
  Fixture f = Fixture::Make();
  auto rp = RPrime::Build(f.table, f.index, PaperList());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->num_entities(), 5);
  // Table 1 shows 8 rows for the five California customers.
  EXPECT_EQ(rp->num_rows(), 8u);
  EXPECT_TRUE(rp->missing_entities().empty());

  // Row -> entity mapping is consistent with the slice's entity column.
  for (size_t r = 0; r < rp->num_rows(); ++r) {
    uint32_t e = rp->row_entity()[r];
    EXPECT_EQ(rp->entity_names()[e],
              rp->table().entity_column().StringAt(static_cast<RowId>(r)));
  }
  // Slice shares the base dictionary.
  EXPECT_EQ(rp->table().entity_column().dict().get(),
            f.table.entity_column().dict().get());
}

TEST(RPrimeTest, EntityOrderFollowsInputList) {
  Fixture f = Fixture::Make();
  auto rp = RPrime::Build(f.table, f.index, PaperList());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->entity_names()[0], "Lara Ellis");
  EXPECT_EQ(rp->entity_names()[4], "Jack Stiles");
  EXPECT_EQ(rp->entity_values()[0], 784.0);
  EXPECT_EQ(rp->entity_values()[4], 586.0);
}

TEST(RPrimeTest, CountsSeenAndTotalTuples) {
  Fixture f = Fixture::Make();
  auto rp = RPrime::Build(f.table, f.index, PaperList());
  ASSERT_TRUE(rp.ok());
  // Full R': seen == total for every entity.
  for (int e = 0; e < rp->num_entities(); ++e) {
    EXPECT_EQ(rp->entity_row_counts()[static_cast<size_t>(e)],
              rp->entity_total_counts()[static_cast<size_t>(e)]);
  }
  // John Smith and Jack Stiles have two tuples each.
  EXPECT_EQ(rp->entity_row_counts()[2], 2);
  EXPECT_EQ(rp->entity_row_counts()[4], 2);
  EXPECT_EQ(rp->entity_row_counts()[0], 1);  // Lara Ellis
}

TEST(RPrimeTest, MissingEntitiesAreReported) {
  Fixture f = Fixture::Make();
  TopKList list;
  list.Append("Lara Ellis", 784);
  list.Append("Ghost Person", 123);
  auto rp = RPrime::Build(f.table, f.index, list);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->num_entities(), 2);
  ASSERT_EQ(rp->missing_entities().size(), 1u);
  EXPECT_EQ(rp->missing_entities()[0], "Ghost Person");
  EXPECT_EQ(rp->entity_total_counts()[1], 0);
}

TEST(RPrimeTest, DuplicateEntitiesCollapse) {
  Fixture f = Fixture::Make();
  TopKList list;  // no-aggregation style list with a repeated entity
  list.Append("John Smith", 654);
  list.Append("John Smith", 175);
  list.Append("Lara Ellis", 784);
  auto rp = RPrime::Build(f.table, f.index, list);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->num_entities(), 2);
  EXPECT_EQ(rp->entity_names()[0], "John Smith");
  EXPECT_EQ(rp->entity_values()[0], 654.0);  // first occurrence
}

TEST(RPrimeTest, SampleRestriction) {
  Fixture f = Fixture::Make();
  // Keep only the first tuple of each entity: global rows of the paper
  // rows are 0..7; John Smith rows are 0,1; Jack Stiles rows are 5,6.
  std::vector<RowId> sample = {0, 2, 4, 5, 7};
  auto rp = RPrime::Build(f.table, f.index, PaperList(), &sample);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->num_rows(), 5u);
  for (int e = 0; e < rp->num_entities(); ++e) {
    EXPECT_EQ(rp->entity_row_counts()[static_cast<size_t>(e)], 1);
  }
  // Totals still reflect the full base table.
  EXPECT_EQ(rp->entity_total_counts()[2], 2);  // John Smith
  // Global row mapping points back into the base table.
  for (size_t r = 0; r < rp->num_rows(); ++r) {
    RowId global = rp->GlobalRow(static_cast<RowId>(r));
    EXPECT_TRUE(std::binary_search(sample.begin(), sample.end(), global));
  }
}

TEST(RPrimeTest, EmptyInputIsRejected) {
  Fixture f = Fixture::Make();
  EXPECT_TRUE(RPrime::Build(f.table, f.index, TopKList())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paleo
