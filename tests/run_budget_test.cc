// Resource-governance tests: RunBudget/BudgetGate semantics in
// isolation, then the governed pipeline end to end — a deadline on a
// heavyweight workload terminates Paleo::Run promptly with partial
// results, an execution cap reports kExecutionBudget with near misses,
// and a tripped CancellationToken wins over every other limit.

#include "common/run_budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/timer.h"
#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"

namespace paleo {
namespace {

TEST(RunBudgetTest, DefaultBudgetIsUnlimited) {
  RunBudget budget;
  EXPECT_TRUE(budget.IsUnlimited());
  EXPECT_EQ(budget.Check(), TerminationReason::kCompleted);
  EXPECT_EQ(budget.Check(1 << 30), TerminationReason::kCompleted);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_GT(budget.RemainingMillis(), 1e6);
}

TEST(RunBudgetTest, DeadlineTripsAfterExpiry) {
  RunBudget budget;
  budget.SetDeadlineAfterMillis(1);
  EXPECT_FALSE(budget.IsUnlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(budget.Check(), TerminationReason::kDeadline);
  EXPECT_LE(budget.RemainingMillis(), 0.0);
  // Clearing the deadline restores the unlimited fast path.
  budget.SetDeadlineAfterMillis(0);
  EXPECT_TRUE(budget.IsUnlimited());
}

TEST(RunBudgetTest, ExecutionCapCountsInclusively) {
  RunBudget budget;
  budget.set_max_executions(10);
  EXPECT_EQ(budget.Check(9), TerminationReason::kCompleted);
  EXPECT_EQ(budget.Check(10), TerminationReason::kExecutionBudget);
  EXPECT_EQ(budget.Check(11), TerminationReason::kExecutionBudget);
}

TEST(RunBudgetTest, CancellationBeatsDeadlineAndCap) {
  CancellationToken token;
  RunBudget budget;
  budget.SetDeadlineAfterMillis(1);
  budget.set_max_executions(1);
  budget.set_cancellation_token(&token);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Deadline passed and cap reached, but a cancelled run must report
  // cancellation, not masquerade as a timeout.
  token.Cancel();
  EXPECT_EQ(budget.Check(100), TerminationReason::kCancelled);
  token.Reset();
  EXPECT_EQ(budget.Check(0), TerminationReason::kDeadline);
}

TEST(RunBudgetTest, TightenTakesTheIntersection) {
  RunBudget loose;
  loose.set_max_executions(1000);
  RunBudget tight;
  tight.set_max_executions(10);
  tight.SetDeadlineAfterMillis(60000);
  loose.Tighten(tight);
  EXPECT_EQ(loose.max_executions(), 10);
  EXPECT_TRUE(loose.has_deadline());
  // Tightening with an unlimited budget changes nothing.
  loose.Tighten(RunBudget::Unlimited());
  EXPECT_EQ(loose.max_executions(), 10);
}

TEST(RunBudgetTest, TerminationReasonNames) {
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kCompleted),
               "completed");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kDeadline),
               "deadline");
  EXPECT_STREQ(
      TerminationReasonToString(TerminationReason::kExecutionBudget),
      "execution budget");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kCancelled),
               "cancelled");
}

TEST(BudgetGateTest, NullAndUnlimitedBudgetsNeverTrip) {
  BudgetGate null_gate(nullptr, 1);
  RunBudget unlimited;
  BudgetGate unlimited_gate(&unlimited, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(null_gate.Tick(), TerminationReason::kCompleted);
    EXPECT_EQ(unlimited_gate.Tick(), TerminationReason::kCompleted);
  }
  EXPECT_FALSE(null_gate.exhausted());
}

TEST(BudgetGateTest, PollsEveryStrideAndLatches) {
  RunBudget budget;
  budget.set_max_executions(5);
  BudgetGate gate(&budget, /*stride=*/4);
  // First Tick polls; executions below the cap keep the gate open.
  EXPECT_EQ(gate.Tick(0), TerminationReason::kCompleted);
  // Ticks 2..4 skip the poll even with the cap exceeded.
  EXPECT_EQ(gate.Tick(100), TerminationReason::kCompleted);
  EXPECT_EQ(gate.Tick(100), TerminationReason::kCompleted);
  EXPECT_EQ(gate.Tick(100), TerminationReason::kCompleted);
  // The 5th call is the next poll: the gate trips and latches.
  EXPECT_EQ(gate.Tick(100), TerminationReason::kExecutionBudget);
  EXPECT_TRUE(gate.exhausted());
  EXPECT_EQ(gate.reason(), TerminationReason::kExecutionBudget);
  // Latched: later Ticks report the same reason without re-polling,
  // even if the execution count would now pass.
  EXPECT_EQ(gate.Tick(0), TerminationReason::kExecutionBudget);
}

TEST(CancellationTokenTest, TripsAndRearms) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

// ---- Governed pipeline, end to end ----

TopKList PaperInput() {
  TopKList input;
  input.Append("Lara Ellis", 784);
  input.Append("Jane O'Neal", 699);
  input.Append("John Smith", 654);
  input.Append("Richard Fox", 596);
  input.Append("Jack Stiles", 586);
  return input;
}

TEST(GovernedRunTest, DefaultOptionsRunUngoverned) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  Paleo baseline(&*table, PaleoOptions{});
  auto ungoverned = baseline.Run(PaperInput());
  ASSERT_TRUE(ungoverned.ok());

  // Zeroed knobs and an explicit unlimited budget take the nullptr fast
  // path: identical results, identical execution counts, no near misses.
  PaleoOptions options;
  options.deadline_ms = 0;
  options.max_validation_executions = 0;
  Paleo governed(&*table, options);
  RunBudget unlimited;
  auto report =
      governed.Run(PaperInput(), /*keep_candidates=*/false, &unlimited);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->termination, TerminationReason::kCompleted);
  EXPECT_TRUE(report->near_misses.empty());
  ASSERT_TRUE(report->found());
  EXPECT_EQ(report->executed_queries, ungoverned->executed_queries);
  EXPECT_TRUE(report->valid[0].query == ungoverned->valid[0].query);
}

TEST(GovernedRunTest, TinyDeadlineTerminatesPromptlyWithNearMisses) {
  // A workload whose validation is heavyweight by construction: full
  // scans of a two-million-row relation (no dimension index), so a
  // single candidate execution far exceeds the deadline, while steps
  // 1-2 run over the ~100-row R' and finish well inside it.
  TrafficGenOptions gen;
  gen.num_customers = 200000;
  gen.months_per_customer = 10;
  gen.seed = 21;
  auto table = TrafficGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();

  TopKQuery hidden;
  hidden.predicate = Predicate::Atom(schema.FieldIndex("plan"),
                                     Value::String("XL"));
  hidden.expr = RankExpr::Column(schema.FieldIndex("data_mb"));
  hidden.agg = AggFn::kSum;
  hidden.k = 10;
  Executor ex;
  auto input = ex.Execute(*table, hidden, ExecContext{});
  ASSERT_TRUE(input.ok());
  ASSERT_EQ(input->size(), 10u);

  PaleoOptions options;
  options.use_dimension_index = false;  // force scan-based validation
  options.stop_at_first_valid = false;
  options.deadline_ms = 10;
  Paleo paleo(&*table, options);

  Timer timer;
  auto report = paleo.Run(*input);
  double elapsed_ms = timer.ElapsedMillis();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->termination, TerminationReason::kDeadline);
  // Prompt: the executor polls the budget every few thousand rows, so
  // the overshoot past the 10ms deadline is bounded (the generous bound
  // absorbs loaded CI machines; ungoverned this validation runs orders
  // of magnitude longer).
  EXPECT_LT(elapsed_ms, 2000.0);
  // Graceful: the best candidates the deadline never let us validate
  // come back as near misses instead of vanishing.
  EXPECT_FALSE(report->near_misses.empty());
  EXPECT_GT(report->candidate_queries, 0);
  for (const CandidateQuery& cq : report->near_misses) {
    EXPECT_GT(cq.suitability, 0.0);
  }
}

TEST(GovernedRunTest, ExecutionCapReportsBudgetWithNearMisses) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());

  // The ungoverned run assembles more than one candidate, so a cap of
  // one execution must leave unvalidated candidates behind.
  PaleoOptions ungoverned;
  ungoverned.stop_at_first_valid = false;
  Paleo baseline(&*table, ungoverned);
  auto full = baseline.Run(PaperInput(), /*keep_candidates=*/true);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->candidates.size(), 1u);

  PaleoOptions options;
  options.stop_at_first_valid = false;
  options.max_validation_executions = 1;
  Paleo paleo(&*table, options);
  auto report = paleo.Run(PaperInput());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->termination, TerminationReason::kExecutionBudget);
  EXPECT_EQ(report->executed_queries, 1);
  EXPECT_FALSE(report->near_misses.empty());
}

TEST(GovernedRunTest, PreCancelledTokenStopsTheRun) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  Paleo paleo(&*table, PaleoOptions{});
  auto report = paleo.Run(PaperInput(), /*keep_candidates=*/false, &budget);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->termination, TerminationReason::kCancelled);
  EXPECT_TRUE(report->valid.empty());
}

}  // namespace
}  // namespace paleo
