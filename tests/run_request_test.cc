// RunRequest API equivalence suite: the deprecated Run / RunOnSample /
// RunConcurrent wrappers must produce reports byte-identical (modulo
// wall-clock fields) to the canonical Run(const RunRequest&), under
// both sequential and parallel validation; plus coverage of the
// observability sinks the request carries (metrics registry, trace).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "paleo/paleo.h"
#include "paleo/sampler.h"
#include "workload/workload.h"

namespace paleo {
namespace {

/// Deterministic serialization of everything in a report except
/// wall-clock measurements (timings, trace) and speculative_executions
/// (parallel-only discarded look-ahead, explicitly wall-clock
/// dependent; see PaleoOptions::num_threads). Two equivalent runs must
/// produce byte-identical fingerprints.
std::string Fingerprint(const ReverseEngineerReport& r,
                        const Schema& schema) {
  std::string out;
  auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };
  for (const ValidQuery& vq : r.valid) {
    line("valid " + vq.query.ToSql(schema) + " @" +
         std::to_string(vq.executions_at_discovery));
  }
  line("candidate_predicates=" + std::to_string(r.candidate_predicates));
  std::string sizes;
  for (int n : r.predicates_by_size) sizes += std::to_string(n) + ",";
  line("predicates_by_size=" + sizes);
  line("tuple_sets=" + std::to_string(r.tuple_sets));
  line("candidate_queries=" + std::to_string(r.candidate_queries));
  line("executed_queries=" + std::to_string(r.executed_queries));
  line("skip_events=" + std::to_string(r.skip_events));
  line("rprime_rows=" + std::to_string(r.rprime_rows));
  line("rprime_bytes=" + std::to_string(r.rprime_bytes));
  line("termination=" +
       std::string(TerminationReasonToString(r.termination)));
  line("ranking=" + std::to_string(r.ranking_info.used_top_entities) +
       std::to_string(r.ranking_info.used_histograms) +
       std::to_string(r.ranking_info.used_fallback) + "/" +
       std::to_string(r.ranking_info.top_entity_candidate_columns) + "/" +
       std::to_string(r.ranking_info.histogram_candidate_columns) + "/" +
       std::to_string(r.ranking_info.tuple_set_evaluations));
  for (const CandidateQuery& cq : r.near_misses) {
    line("near_miss " + cq.query.ToSql(schema));
  }
  for (const CandidateQuery& cq : r.candidates) {
    line("candidate " + cq.query.ToSql(schema));
  }
  return out;
}

/// Shared fixture: a TPC-H relation and a small workload, reused by
/// every equivalence check (table generation dominates the cost).
class RunRequestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchGenOptions gen;
    gen.scale_factor = 0.003;
    auto table = TpchGen::Generate(gen);
    ASSERT_TRUE(table.ok());
    table_ = new Table(std::move(*table));

    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA, QueryFamily::kSumAB};
    wl.predicate_sizes = {1, 2};
    wl.ks = {5};
    wl.queries_per_config = 1;
    auto workload = WorkloadGen::Generate(*table_, wl);
    ASSERT_TRUE(workload.ok());
    ASSERT_GE(workload->size(), 3u);
    workload_ = new std::vector<WorkloadQuery>(std::move(*workload));
  }

  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete table_;
    table_ = nullptr;
  }

  static const Table& table() { return *table_; }
  static const std::vector<WorkloadQuery>& workload() {
    return *workload_;
  }

 private:
  static Table* table_;
  static std::vector<WorkloadQuery>* workload_;
};

Table* RunRequestTest::table_ = nullptr;
std::vector<WorkloadQuery>* RunRequestTest::workload_ = nullptr;

TEST_F(RunRequestTest, NullInputIsInvalidArgument) {
  Paleo paleo(&table(), PaleoOptions{});
  RunRequest request;  // input left null
  auto report = paleo.Run(request);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument())
      << report.status().ToString();
}

TEST_F(RunRequestTest, DeprecatedRunWrapperMatchesRunRequest) {
  Paleo paleo(&table(), PaleoOptions{});
  for (const WorkloadQuery& wq : workload()) {
    auto via_wrapper = paleo.Run(wq.list, /*keep_candidates=*/true);
    ASSERT_TRUE(via_wrapper.ok()) << wq.name;

    RunRequest request;
    request.input = &wq.list;
    request.keep_candidates = true;
    auto via_request = paleo.Run(request);
    ASSERT_TRUE(via_request.ok()) << wq.name;

    EXPECT_EQ(Fingerprint(*via_wrapper, table().schema()),
              Fingerprint(*via_request, table().schema()))
        << wq.name;
  }
}

TEST_F(RunRequestTest, DeprecatedRunOnSampleWrapperMatchesRunRequest) {
  Paleo paleo(&table(), PaleoOptions{});
  for (const WorkloadQuery& wq : workload()) {
    auto sample = Sampler::UniformPerEntity(
        paleo.index(), wq.list.DistinctEntities(), 0.5, /*seed=*/42);
    ASSERT_TRUE(sample.ok()) << wq.name;

    auto via_wrapper = paleo.RunOnSample(wq.list, *sample, 0.5,
                                         /*keep_candidates=*/true);
    ASSERT_TRUE(via_wrapper.ok()) << wq.name;

    RunRequest request;
    request.input = &wq.list;
    request.sample_rows = &*sample;
    request.sample_fraction = 0.5;
    request.keep_candidates = true;
    auto via_request = paleo.Run(request);
    ASSERT_TRUE(via_request.ok()) << wq.name;

    EXPECT_EQ(Fingerprint(*via_wrapper, table().schema()),
              Fingerprint(*via_request, table().schema()))
        << wq.name;
  }
}

TEST_F(RunRequestTest, CoverageOverrideForwardedByBothPaths) {
  Paleo paleo(&table(), PaleoOptions{});
  const WorkloadQuery& wq = workload()[0];
  auto sample = Sampler::UniformPerEntity(
      paleo.index(), wq.list.DistinctEntities(), 0.3, /*seed=*/7);
  ASSERT_TRUE(sample.ok());

  auto via_wrapper =
      paleo.RunOnSample(wq.list, *sample, 0.3, /*keep_candidates=*/false,
                        /*coverage_ratio_override=*/0.3);
  ASSERT_TRUE(via_wrapper.ok());

  RunRequest request;
  request.input = &wq.list;
  request.sample_rows = &*sample;
  request.sample_fraction = 0.3;
  request.coverage_ratio_override = 0.3;
  auto via_request = paleo.Run(request);
  ASSERT_TRUE(via_request.ok());

  EXPECT_EQ(Fingerprint(*via_wrapper, table().schema()),
            Fingerprint(*via_request, table().schema()));
}

TEST_F(RunRequestTest, DeprecatedRunConcurrentWrapperMatchesRunRequest) {
  PaleoOptions options;
  options.num_threads = 4;
  Paleo paleo(&table(), options);
  ThreadPool pool(4);
  for (const WorkloadQuery& wq : workload()) {
    auto via_wrapper = paleo.RunConcurrent(wq.list, nullptr, &pool);
    ASSERT_TRUE(via_wrapper.ok()) << wq.name;

    RunRequest request;
    request.input = &wq.list;
    request.pool = &pool;
    auto via_request = paleo.Run(request);
    ASSERT_TRUE(via_request.ok()) << wq.name;

    EXPECT_EQ(Fingerprint(*via_wrapper, table().schema()),
              Fingerprint(*via_request, table().schema()))
        << wq.name;
  }
}

TEST_F(RunRequestTest, ParallelValidationMatchesSequentialFingerprint) {
  // The parallel rank-order-commit schedule must not change any
  // fingerprinted field relative to a plain sequential run.
  Paleo sequential(&table(), PaleoOptions{});
  PaleoOptions parallel_options;
  parallel_options.num_threads = 4;
  ThreadPool pool(4);
  for (const WorkloadQuery& wq : workload()) {
    RunRequest seq_request;
    seq_request.input = &wq.list;
    auto seq = sequential.Run(seq_request);
    ASSERT_TRUE(seq.ok()) << wq.name;

    RunRequest par_request;
    par_request.input = &wq.list;
    par_request.pool = &pool;
    par_request.options_override = &parallel_options;
    auto par = sequential.Run(par_request);
    ASSERT_TRUE(par.ok()) << wq.name;

    EXPECT_EQ(Fingerprint(*seq, table().schema()),
              Fingerprint(*par, table().schema()))
        << wq.name;
  }
}

TEST_F(RunRequestTest, OptionsOverrideEqualToInstanceIsIdentity) {
  Paleo paleo(&table(), PaleoOptions{});
  const WorkloadQuery& wq = workload()[0];
  PaleoOptions copy = paleo.options();

  RunRequest plain;
  plain.input = &wq.list;
  auto base = paleo.Run(plain);
  ASSERT_TRUE(base.ok());

  RunRequest overridden;
  overridden.input = &wq.list;
  overridden.options_override = &copy;
  auto with_override = paleo.Run(overridden);
  ASSERT_TRUE(with_override.ok());

  EXPECT_EQ(Fingerprint(*base, table().schema()),
            Fingerprint(*with_override, table().schema()));
}

TEST_F(RunRequestTest, MetricsRegistryCountsMatchReport) {
  Paleo paleo(&table(), PaleoOptions{});
  const WorkloadQuery& wq = workload()[0];
  obs::MetricsRegistry registry;

  RunRequest request;
  request.input = &wq.list;
  request.metrics = &registry;
  auto report = paleo.Run(request);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());

  EXPECT_EQ(registry.counter("paleo_runs_total")->value(), 1);
  EXPECT_EQ(registry.counter("paleo_runs_found_total")->value(), 1);
  EXPECT_EQ(registry.histogram("paleo_run_ms")->count(), 1);
  // Per-outcome validation counters agree with the report's totals.
  EXPECT_EQ(registry
                .counter("paleo_validation_candidates_total",
                         "outcome=\"executed\"")
                ->value(),
            report->executed_queries);
  EXPECT_EQ(registry
                .counter("paleo_validation_candidates_total",
                         "outcome=\"skipped\"")
                ->value(),
            report->skip_events);
  EXPECT_EQ(registry
                .counter("paleo_validation_candidates_total",
                         "outcome=\"speculative\"")
                ->value(),
            report->speculative_executions);
  EXPECT_EQ(registry.counter("paleo_candidate_predicates_total")->value(),
            report->candidate_predicates);
  EXPECT_EQ(registry.counter("paleo_candidate_queries_total")->value(),
            report->candidate_queries);
  // The request-private executor reported its side of the story.
  EXPECT_GE(registry.counter("paleo_executor_queries_total")->value(),
            report->executed_queries);

  // A second run accumulates into the same instruments.
  auto again = paleo.Run(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(registry.counter("paleo_runs_total")->value(), 2);
  EXPECT_EQ(registry.histogram("paleo_run_ms")->count(), 2);

  // The rendered exposition covers every outcome label.
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("outcome=\"executed\""), std::string::npos);
  EXPECT_NE(text.find("outcome=\"speculative\""), std::string::npos);
  EXPECT_NE(text.find("outcome=\"skipped\""), std::string::npos);
}

TEST_F(RunRequestTest, TraceCoversPipelineStages) {
  Paleo paleo(&table(), PaleoOptions{});
  const WorkloadQuery& wq = workload()[0];

  RunRequest request;
  request.input = &wq.list;
  auto without = paleo.Run(request);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->trace, nullptr);  // off by default

  request.collect_trace = true;
  auto report = paleo.Run(request);
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->trace, nullptr);
  const obs::Trace& trace = *report->trace;
  const obs::Span* run = trace.FindSpan("run");
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->finished());
  EXPECT_EQ(run->parent, obs::Trace::kNoSpan);
  for (const char* stage :
       {"find_predicates", "find_ranking", "validate"}) {
    const obs::Span* span = trace.FindSpan(stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_TRUE(span->finished()) << stage;
  }
  // One "execute" span per committed sequential execution.
  int64_t execute_spans = 0;
  for (const obs::Span& span : trace.spans()) {
    if (span.name == "execute") ++execute_spans;
  }
  EXPECT_EQ(execute_spans, report->executed_queries);
  // The dump round-trips to non-trivial JSON.
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"find_predicates\""), std::string::npos);
}

TEST_F(RunRequestTest, PaperExampleStillRecoversViaRunRequest) {
  // The introduction example through the canonical entry point, with
  // every observability sink on at once.
  auto traffic = TrafficGen::PaperExample();
  ASSERT_TRUE(traffic.ok());
  TopKList input;
  input.Append("Lara Ellis", 784);
  input.Append("Jane O'Neal", 699);
  input.Append("John Smith", 654);
  input.Append("Richard Fox", 596);
  input.Append("Jack Stiles", 586);

  Paleo paleo(&*traffic, PaleoOptions{});
  obs::MetricsRegistry registry;
  RunRequest request;
  request.input = &input;
  request.metrics = &registry;
  request.collect_trace = true;
  request.keep_candidates = true;
  auto report = paleo.Run(request);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->found());
  EXPECT_NE(report->valid[0].query.ToSql(traffic->schema())
                .find("max(minutes)"),
            std::string::npos);
  EXPECT_EQ(registry.counter("paleo_runs_found_total")->value(), 1);
  ASSERT_NE(report->trace, nullptr);
  EXPECT_NE(report->trace->FindSpan("run"), nullptr);
}

}  // namespace
}  // namespace paleo
