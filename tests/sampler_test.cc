// Tests for the R' samplers (Section 6.4).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/traffic_gen.h"
#include "paleo/options.h"
#include "paleo/sampler.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  EntityIndex index;
  std::vector<std::string> entities;

  static Fixture Make() {
    TrafficGenOptions options;
    options.num_customers = 30;
    options.months_per_customer = 10;
    auto t = TrafficGen::Generate(options);
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    EntityIndex index = EntityIndex::Build(table);
    std::vector<std::string> entities;
    const StringDictionary& dict = *table.entity_column().dict();
    for (uint32_t c = 0; c < 8; ++c) entities.push_back(dict.Get(c));
    return Fixture{std::move(table), std::move(index),
                   std::move(entities)};
  }
};

TEST(SamplerTest, UniformPerEntitySamplesTheRequestedFraction) {
  Fixture f = Fixture::Make();
  auto sample = Sampler::UniformPerEntity(f.index, f.entities, 0.3, 42);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(std::is_sorted(sample->begin(), sample->end()));
  // Each of the 8 entities has 10 tuples -> ceil(3) = 3 each.
  EXPECT_EQ(sample->size(), 24u);
  // Every sampled row belongs to a requested entity.
  std::set<std::string> requested(f.entities.begin(), f.entities.end());
  for (RowId r : *sample) {
    EXPECT_TRUE(requested.count(f.table.entity_column().StringAt(r)));
  }
}

TEST(SamplerTest, UniformPerEntityKeepsAtLeastOneTuple) {
  Fixture f = Fixture::Make();
  auto sample = Sampler::UniformPerEntity(f.index, f.entities, 0.01, 42);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), f.entities.size());
}

TEST(SamplerTest, UniformPerEntityFullFractionIsEverything) {
  Fixture f = Fixture::Make();
  auto sample = Sampler::UniformPerEntity(f.index, f.entities, 1.0, 42);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 80u);
}

TEST(SamplerTest, UniformPerEntityDeterministicBySeed) {
  Fixture f = Fixture::Make();
  auto a = Sampler::UniformPerEntity(f.index, f.entities, 0.4, 1);
  auto b = Sampler::UniformPerEntity(f.index, f.entities, 0.4, 1);
  auto c = Sampler::UniformPerEntity(f.index, f.entities, 0.4, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(SamplerTest, UniformPerEntitySkipsMissingEntities) {
  Fixture f = Fixture::Make();
  std::vector<std::string> with_ghost = f.entities;
  with_ghost.push_back("Ghost");
  auto sample = Sampler::UniformPerEntity(f.index, with_ghost, 0.3, 42);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 24u);  // ghost contributes nothing
}

TEST(SamplerTest, ByEntityTakesAllTuplesOfChosenEntities) {
  Fixture f = Fixture::Make();
  auto sample = Sampler::ByEntity(f.index, f.entities, 0.5, 42);
  ASSERT_TRUE(sample.ok());
  // 4 of 8 entities, 10 tuples each.
  EXPECT_EQ(sample->size(), 40u);
  // Entities present in the sample have ALL their tuples present.
  std::set<std::string> sampled_entities;
  for (RowId r : *sample) {
    sampled_entities.insert(f.table.entity_column().StringAt(r));
  }
  EXPECT_EQ(sampled_entities.size(), 4u);
  for (const std::string& e : sampled_entities) {
    const auto& posting = f.index.Lookup(e);
    for (RowId r : posting) {
      EXPECT_TRUE(std::binary_search(sample->begin(), sample->end(), r));
    }
  }
}

TEST(SamplerTest, ByEntityAlwaysKeepsAtLeastOne) {
  Fixture f = Fixture::Make();
  auto sample = Sampler::ByEntity(f.index, f.entities, 0.01, 42);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 10u);  // one entity, all its tuples
}

TEST(SamplerTest, InvalidFractionsRejected) {
  Fixture f = Fixture::Make();
  EXPECT_TRUE(Sampler::UniformPerEntity(f.index, f.entities, 0.0, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Sampler::UniformPerEntity(f.index, f.entities, 1.5, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Sampler::ByEntity(f.index, f.entities, -0.1, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(CoverageScheduleTest, MatchesPaperAnchors) {
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(0.05), 0.5);
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(0.10), 0.6);
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(0.20), 0.7);
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(0.30), 0.8);
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(1.00), 1.0);
}

TEST(CoverageScheduleTest, InterpolatesAndClamps) {
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(0.01), 0.5);  // below first anchor
  double mid = CoverageRatioForSample(0.15);
  EXPECT_GT(mid, 0.6);
  EXPECT_LT(mid, 0.7);
  EXPECT_DOUBLE_EQ(CoverageRatioForSample(2.0), 1.0);
  // Monotone non-decreasing.
  double prev = 0.0;
  for (double fr = 0.01; fr <= 1.0; fr += 0.01) {
    double r = CoverageRatioForSample(fr);
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
}

}  // namespace
}  // namespace paleo
