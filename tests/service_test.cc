// DiscoveryService integration and stress tests: admission control,
// session lifecycle, cancellation/deadline wind-down, shutdown safety,
// and equivalence of concurrent results with the single-threaded
// pipeline.

#include "service/discovery_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/table_catalog.h"
#include "common/fault_points.h"
#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "obs/trace.h"
#include "paleo/paleo.h"
#include "service/request_queue.h"
#include "service/session.h"
#include "workload/workload.h"

namespace paleo {
namespace {

struct Baseline {
  TopKQuery first_valid;
  size_t num_valid = 0;
  int64_t executed_queries = 0;
  int64_t skip_events = 0;
};

/// Shared fixture state: one TPC-H relation, a mixed workload, and the
/// single-threaded reference run of every workload query. Built once —
/// the table build plus |workload| baseline pipeline runs dominate the
/// suite's cost otherwise.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchGenOptions gen;
    gen.scale_factor = 0.003;
    auto table = TpchGen::Generate(gen);
    ASSERT_TRUE(table.ok());
    table_ = new Table(std::move(*table));

    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA, QueryFamily::kSumAB};
    wl.predicate_sizes = {1, 2};
    wl.ks = {5, 10};
    wl.queries_per_config = 2;
    auto workload = WorkloadGen::Generate(*table_, wl);
    ASSERT_TRUE(workload.ok());
    ASSERT_GE(workload->size(), 8u);
    workload_ = new std::vector<WorkloadQuery>(std::move(*workload));

    // Single-threaded reference for every workload query.
    Paleo paleo(table_, PaleoOptions{});
    baselines_ = new std::vector<Baseline>();
    for (const WorkloadQuery& wq : *workload_) {
      auto report = paleo.Run(wq.list);
      ASSERT_TRUE(report.ok()) << wq.name;
      ASSERT_TRUE(report->found()) << wq.name;
      Baseline b;
      b.first_valid = report->valid[0].query;
      b.num_valid = report->valid.size();
      b.executed_queries = report->executed_queries;
      b.skip_events = report->skip_events;
      baselines_->push_back(b);
    }
  }

  static void TearDownTestSuite() {
    delete baselines_;
    baselines_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete table_;
    table_ = nullptr;
  }

  static const Table& table() { return *table_; }

  /// A single-version catalog over a copy of the fixture table (plain
  /// copy shares dictionaries — fine for a table that never appends;
  /// ingestion deep-copies before mutating anyway).
  static std::shared_ptr<TableCatalog> MakeCatalog(
      PaleoOptions options = {}) {
    return std::make_shared<TableCatalog>(Table(table()),
                                          std::move(options));
  }

  static const std::vector<WorkloadQuery>& workload() { return *workload_; }
  static const std::vector<Baseline>& baselines() { return *baselines_; }

  /// Checks a finished session's report against the sequential
  /// reference for workload query `wi`: identical valid set and
  /// identical committed validation effort.
  static void ExpectMatchesBaseline(const Session& session, size_t wi) {
    ASSERT_EQ(session.Poll(), SessionState::kDone)
        << SessionStateToString(session.Poll());
    const ReverseEngineerReport* report = session.report();
    ASSERT_NE(report, nullptr);
    const Baseline& b = baselines()[wi];
    ASSERT_TRUE(report->found()) << workload()[wi].name;
    EXPECT_EQ(report->valid.size(), b.num_valid) << workload()[wi].name;
    EXPECT_TRUE(report->valid[0].query == b.first_valid)
        << workload()[wi].name;
    EXPECT_EQ(report->executed_queries, b.executed_queries)
        << workload()[wi].name;
    EXPECT_EQ(report->skip_events, b.skip_events) << workload()[wi].name;
  }

 private:
  static Table* table_;
  static std::vector<WorkloadQuery>* workload_;
  static std::vector<Baseline>* baselines_;
};

Table* ServiceTest::table_ = nullptr;
std::vector<WorkloadQuery>* ServiceTest::workload_ = nullptr;
std::vector<Baseline>* ServiceTest::baselines_ = nullptr;

TEST_F(ServiceTest, ParallelValidationMatchesSequential) {
  // Intra-request parallelism alone (no service): RunConcurrent with a
  // pool and num_threads > 1 must commit exactly the sequential
  // schedule — same valid set, same executed_queries, same skips.
  PaleoOptions options;
  options.num_threads = 4;
  Paleo paleo(&table(), options);
  ThreadPool pool(4);
  for (size_t wi = 0; wi < workload().size(); ++wi) {
    auto report =
        paleo.RunConcurrent(workload()[wi].list, nullptr, &pool);
    ASSERT_TRUE(report.ok()) << workload()[wi].name;
    const Baseline& b = baselines()[wi];
    ASSERT_TRUE(report->found()) << workload()[wi].name;
    EXPECT_EQ(report->valid.size(), b.num_valid);
    EXPECT_TRUE(report->valid[0].query == b.first_valid)
        << workload()[wi].name;
    EXPECT_EQ(report->executed_queries, b.executed_queries)
        << workload()[wi].name;
    EXPECT_EQ(report->skip_events, b.skip_events) << workload()[wi].name;
  }
}

TEST_F(ServiceTest, SingleRequestLifecycle) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  DiscoveryService service(MakeCatalog(), service_options);
  auto session = service.Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  SessionState state = (*session)->Wait();
  EXPECT_EQ(state, SessionState::kDone);
  EXPECT_TRUE((*session)->status().ok());
  ExpectMatchesBaseline(**session, 0);
  EXPECT_GE((*session)->queue_wait_ms(), 0.0);
  EXPECT_GT((*session)->run_ms(), 0.0);
  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.done, 1);
  EXPECT_EQ(stats.shed, 0);
}

TEST_F(ServiceTest, StressConcurrentRequestsMatchBaseline) {
  // >= 8 workers, >= 32 queued requests, multiple client threads.
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  constexpr int kTotal = kClients * kRequestsPerClient;

  DiscoveryServiceOptions service_options;
  service_options.num_workers = 8;
  service_options.queue_capacity = kTotal;
  PaleoOptions paleo_options;
  paleo_options.num_threads = 2;  // exercise intra-request parallelism
  DiscoveryService service(MakeCatalog(paleo_options), service_options);

  std::vector<std::shared_ptr<Session>> sessions(kTotal);
  std::vector<size_t> workload_index(kTotal);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int slot = c * kRequestsPerClient + r;
        const size_t wi =
            static_cast<size_t>(slot) % workload().size();
        workload_index[static_cast<size_t>(slot)] = wi;
        auto session = service.Submit(workload()[wi].list);
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        sessions[static_cast<size_t>(slot)] = *session;
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);  // capacity == kTotal: nothing shed

  for (int i = 0; i < kTotal; ++i) {
    ASSERT_NE(sessions[static_cast<size_t>(i)], nullptr);
    SessionState state = sessions[static_cast<size_t>(i)]->Wait();
    ASSERT_TRUE(IsTerminal(state)) << SessionStateToString(state);
    ExpectMatchesBaseline(*sessions[static_cast<size_t>(i)],
                          workload_index[static_cast<size_t>(i)]);
  }
  auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.done, kTotal);
  EXPECT_EQ(stats.Finished(), kTotal);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST_F(ServiceTest, ExactlyOneTerminalStateUnderRepeatedPolling) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  DiscoveryService service(MakeCatalog(), service_options);
  auto session = service.Submit(workload()[1].list);
  ASSERT_TRUE(session.ok());
  SessionState first = (*session)->Wait();
  ASSERT_TRUE(IsTerminal(first));
  // A terminal state is final: every later observation agrees.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*session)->Poll(), first);
  }
  EXPECT_EQ((*session)->Wait(), first);
  EXPECT_EQ((*session)->WaitFor(std::chrono::milliseconds(1)), first);
}

TEST_F(ServiceTest, AdmissionShedsWhenQueueFull) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.queue_capacity = 1;
  DiscoveryService service(MakeCatalog(), service_options);

  // Flood far faster than one worker can drain a real pipeline run.
  constexpr int kFlood = 64;
  int shed = 0;
  std::vector<std::shared_ptr<Session>> admitted;
  for (int i = 0; i < kFlood; ++i) {
    auto session =
        service.Submit(workload()[static_cast<size_t>(i) %
                                  workload().size()].list);
    if (session.ok()) {
      admitted.push_back(*session);
    } else {
      EXPECT_TRUE(session.status().IsResourceExhausted())
          << session.status().ToString();
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.stats().shed, shed);
  EXPECT_EQ(service.stats().submitted, kFlood);
  for (auto& s : admitted) {
    EXPECT_TRUE(IsTerminal(s->Wait()));
  }
  EXPECT_EQ(service.stats().Finished(),
            static_cast<int64_t>(admitted.size()));
}

TEST_F(ServiceTest, CancelMidFlightNeverDeadlocks) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 64;
  DiscoveryService service(MakeCatalog(), service_options);

  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 24; ++i) {
    auto session = service.Submit(
        workload()[static_cast<size_t>(i) % workload().size()].list);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  // Cancel every other session at arbitrary points in its life.
  for (size_t i = 0; i < sessions.size(); i += 2) {
    sessions[i]->Cancel();
  }
  for (auto& s : sessions) {
    SessionState state = s->Wait();  // must not hang
    ASSERT_TRUE(IsTerminal(state)) << SessionStateToString(state);
  }
  // Cancelled sessions either lost the race (kDone) or wound down
  // (kCancelled); both carry a well-formed outcome.
  for (size_t i = 0; i < sessions.size(); i += 2) {
    SessionState state = sessions[i]->Poll();
    EXPECT_TRUE(state == SessionState::kCancelled ||
                state == SessionState::kDone)
        << SessionStateToString(state);
    if (state == SessionState::kCancelled) {
      const ReverseEngineerReport* report = sessions[i]->report();
      if (report != nullptr) {
        EXPECT_EQ(report->termination, TerminationReason::kCancelled);
      }
    }
  }
  // Uncancelled sessions still match the sequential reference.
  for (size_t i = 1; i < sessions.size(); i += 2) {
    ExpectMatchesBaseline(*sessions[i], i % workload().size());
  }
}

TEST_F(ServiceTest, DeadlineExpiresQueuedAndRunningSessions) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.queue_capacity = 64;
  service_options.default_deadline_ms = 1;  // brutally tight
  DiscoveryService service(MakeCatalog(), service_options);

  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 16; ++i) {
    auto session = service.Submit(
        workload()[static_cast<size_t>(i) % workload().size()].list);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  int expired = 0;
  for (auto& s : sessions) {
    SessionState state = s->Wait();  // must not hang
    ASSERT_TRUE(IsTerminal(state)) << SessionStateToString(state);
    if (state == SessionState::kExpired) {
      ++expired;
      const ReverseEngineerReport* report = s->report();
      if (report != nullptr) {
        EXPECT_EQ(report->termination, TerminationReason::kDeadline);
      }
    }
  }
  // With a 1ms deadline and one worker, the tail of the queue cannot
  // possibly start in time.
  EXPECT_GT(expired, 0);
  EXPECT_EQ(service.stats().Finished(),
            static_cast<int64_t>(sessions.size()));
}

TEST_F(ServiceTest, PerRequestDeadlineOverridesDefault) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  DiscoveryService service(MakeCatalog(), service_options);
  PaleoOptions request_options;
  request_options.deadline_ms = 1;
  // Submit enough that at least the later ones expire before running.
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 8; ++i) {
    auto session =
        service.Submit(workload()[0].list, request_options);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  for (auto& s : sessions) {
    SessionState state = s->Wait();
    EXPECT_TRUE(state == SessionState::kExpired ||
                state == SessionState::kDone)
        << SessionStateToString(state);
  }
}

TEST_F(ServiceTest, CancelAllFinishesEverything) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.queue_capacity = 64;
  DiscoveryService service(MakeCatalog(), service_options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 16; ++i) {
    auto session = service.Submit(
        workload()[static_cast<size_t>(i) % workload().size()].list);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  service.CancelAll();
  for (auto& s : sessions) {
    ASSERT_TRUE(IsTerminal(s->Wait()));
  }
  EXPECT_EQ(service.stats().Finished(),
            static_cast<int64_t>(sessions.size()));
}

TEST_F(ServiceTest, DestructionWithInFlightSessionsIsSafe) {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    DiscoveryServiceOptions service_options;
    service_options.num_workers = 2;
    service_options.queue_capacity = 64;
    DiscoveryService service(MakeCatalog(), service_options);
    for (int i = 0; i < 12; ++i) {
      auto session = service.Submit(
          workload()[static_cast<size_t>(i) % workload().size()].list);
      ASSERT_TRUE(session.ok());
      sessions.push_back(*session);
    }
    // Service destroyed while most sessions are queued or running.
  }
  // Shutdown left every session terminal; none of these can hang.
  for (auto& s : sessions) {
    ASSERT_TRUE(IsTerminal(s->Wait()))
        << SessionStateToString(s->Poll());
  }
}

TEST_F(ServiceTest, ServiceRequestSubmitCarriesTraceAndMatchesBaseline) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  DiscoveryService service(MakeCatalog(), service_options);

  ServiceRequest request;
  request.input = workload()[0].list;
  request.collect_trace = true;
  auto session = service.Submit(std::move(request));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->Wait(), SessionState::kDone);
  ExpectMatchesBaseline(**session, 0);

  // The session's span tree: "session" root, "queued" child, and the
  // pipeline's "run" tree grafted under the root.
  std::shared_ptr<const obs::Trace> trace = (*session)->trace();
  ASSERT_NE(trace, nullptr);
  const obs::Span* root = trace->FindSpan("session");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, obs::Trace::kNoSpan);
  EXPECT_TRUE(root->finished());
  const obs::Span* queued = trace->FindSpan("queued");
  ASSERT_NE(queued, nullptr);
  EXPECT_TRUE(queued->finished());
  const obs::Span* run = trace->FindSpan("run");
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->finished());
  EXPECT_NE(trace->FindSpan("validate"), nullptr);

  // Without the flag there is no trace.
  ServiceRequest untraced;
  untraced.input = workload()[0].list;
  auto plain = service.Submit(std::move(untraced));
  ASSERT_TRUE(plain.ok());
  (*plain)->Wait();
  EXPECT_EQ((*plain)->trace(), nullptr);
}

TEST_F(ServiceTest, ServiceRequestOptionsOverrideApplies) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  DiscoveryService service(MakeCatalog(), service_options);

  ServiceRequest request;
  request.input = workload()[0].list;
  PaleoOptions per_request;
  per_request.deadline_ms = 1;  // brutally tight, like the wrapper test
  request.options = per_request;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 8; ++i) {
    auto session = service.Submit(request);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  for (auto& s : sessions) {
    SessionState state = s->Wait();
    EXPECT_TRUE(state == SessionState::kExpired ||
                state == SessionState::kDone)
        << SessionStateToString(state);
  }
}

TEST_F(ServiceTest, MetricsRegistryMirrorsStatsAndCoversPipeline) {
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.queue_capacity = 16;
  DiscoveryService service(MakeCatalog(), service_options);

  constexpr int kRequests = 6;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < kRequests; ++i) {
    ServiceRequest request;
    request.input =
        workload()[static_cast<size_t>(i) % workload().size()].list;
    auto session = service.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  for (auto& s : sessions) {
    ASSERT_EQ(s->Wait(), SessionState::kDone);
  }

  const obs::MetricsRegistry& registry = service.metrics();
  EXPECT_EQ(registry.counter("paleo_service_submitted_total")->value(),
            kRequests);
  EXPECT_EQ(registry
                .counter("paleo_service_sessions_total", "state=\"done\"")
                ->value(),
            kRequests);
  EXPECT_EQ(registry.gauge("paleo_service_queue_depth")->value(), 0);
  EXPECT_EQ(registry.histogram("paleo_service_queue_wait_ms")->count(),
            kRequests);
  EXPECT_EQ(registry.histogram("paleo_service_run_ms")->count(),
            kRequests);
  // Every run reported into the shared pipeline series.
  EXPECT_EQ(registry.counter("paleo_runs_total")->value(), kRequests);
  EXPECT_GT(
      registry
          .counter("paleo_validation_candidates_total",
                   "outcome=\"executed\"")
          ->value(),
      0);
  EXPECT_GT(registry.counter("paleo_executor_queries_total")->value(), 0);

  // The rendered dump exposes the full serving + pipeline surface.
  std::string text = registry.RenderText();
  for (const char* needle :
       {"paleo_service_submitted_total", "paleo_service_shed_total",
        "paleo_service_sessions_total{state=\"done\"}",
        "paleo_service_queue_depth", "paleo_service_queue_wait_ms_count",
        "paleo_service_run_ms_bucket", "paleo_runs_total",
        "paleo_run_ms_count", "outcome=\"executed\"",
        "outcome=\"speculative\"", "outcome=\"skipped\"",
        "paleo_executor_rows_scanned_total"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST_F(ServiceTest, ConcurrentSubmittersAndScrapersOnOneRegistry) {
  // TSan-facing stress: client threads hammer Submit/Wait (every run
  // writing the shared registry through the pool workers) while a
  // scraper thread renders the exposition in a loop. Totals must come
  // out exact and the interleaving data-race-free.
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 64;
  DiscoveryService service(MakeCatalog(), service_options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::thread scraper([&] {
    size_t rendered = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rendered += service.metrics().RenderText().size();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(rendered, 0u);
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        ServiceRequest request;
        request.input =
            workload()[static_cast<size_t>(c * kPerClient + r) %
                       workload().size()]
                .list;
        request.collect_trace = (r % 2) == 0;
        auto session = service.Submit(std::move(request));
        if (!session.ok()) continue;  // shed under load is fine here
        if (IsTerminal((*session)->Wait())) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  scraper.join();

  EXPECT_GT(completed.load(), 0);
  const obs::MetricsRegistry& registry = service.metrics();
  auto stats = service.stats();
  EXPECT_EQ(registry.counter("paleo_service_submitted_total")->value(),
            stats.submitted);
  EXPECT_EQ(registry
                .counter("paleo_service_sessions_total", "state=\"done\"")
                ->value(),
            stats.done);
  EXPECT_EQ(registry.counter("paleo_service_shed_total")->value(),
            stats.shed);
  EXPECT_EQ(registry.gauge("paleo_service_queue_depth")->value(), 0);
}

TEST_F(ServiceTest, SubmitAfterShutdownRejected) {
  auto service = std::make_unique<DiscoveryService>(
      MakeCatalog(), DiscoveryServiceOptions{});
  // Exercise the shutdown flag through the public seam that sets it:
  // destruction. A submit racing destruction is the client's bug; the
  // contract we can test is that a destroyed service finished all its
  // sessions (above) and that stats are coherent right up to the end.
  auto session = service->Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  auto stats = service->stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.Finished(), 1);
  service.reset();
  EXPECT_EQ((*session)->Poll(), SessionState::kDone);
}

TEST_F(ServiceTest, CancelAllRacingSubmitUnderArmedEnqueueFault) {
  // Regression: an injected admission failure must not leave a session
  // half-registered, and sessions admitted while CancelAll sweeps in
  // parallel must all still reach a terminal state. The fault point
  // makes Submit fail intermittently exactly at the enqueue seam.
  struct DisarmGuard {
    ~DisarmGuard() { FaultPoints::DisarmAll(); }
  } guard;
  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kResourceExhausted;
  spec.message = "injected admission failure";
  spec.probability = 0.25;
  spec.seed = 1234;
  FaultPoints::Arm("service.submit.enqueue", spec);

  DiscoveryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.queue_capacity = 64;
  DiscoveryService service(MakeCatalog(), service_options);

  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 8;
  Mutex admitted_mutex;
  std::vector<std::shared_ptr<Session>> admitted;  // under admitted_mutex
  std::atomic<int> injected_rejections{0};
  std::atomic<bool> done_submitting{false};
  std::thread canceller([&] {
    while (!done_submitting.load(std::memory_order_relaxed)) {
      service.CancelAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.CancelAll();  // one final sweep after the last admission
  });
  std::vector<std::thread> submitters;
  for (int c = 0; c < kSubmitters; ++c) {
    submitters.emplace_back([&, c] {
      for (int r = 0; r < kPerSubmitter; ++r) {
        auto session = service.Submit(
            workload()[static_cast<size_t>(c * kPerSubmitter + r) %
                       workload().size()]
                .list);
        if (!session.ok()) {
          injected_rejections.fetch_add(1);
          continue;
        }
        MutexLock lock(admitted_mutex);
        admitted.push_back(*session);
      }
    });
  }
  for (auto& t : submitters) t.join();
  done_submitting.store(true, std::memory_order_relaxed);
  canceller.join();

  size_t num_admitted;
  {
    MutexLock lock(admitted_mutex);
    num_admitted = admitted.size();
    for (auto& s : admitted) {
      SessionState state =
          s->WaitFor(std::chrono::seconds(30));  // must not hang
      ASSERT_TRUE(IsTerminal(state)) << SessionStateToString(state);
    }
  }
  // Submit never half-fails: every attempt either rejected at the
  // armed seam or produced a session that reached a terminal state.
  EXPECT_EQ(static_cast<int>(num_admitted) + injected_rejections.load(),
            kSubmitters * kPerSubmitter);
  EXPECT_GT(injected_rejections.load(), 0);  // p=0.25 over 24 draws
  EXPECT_EQ(service.stats().Finished(),
            static_cast<int64_t>(num_admitted));
}

TEST_F(ServiceTest, LateAdmissionAfterCancelAllStillReachesTerminal) {
  // Regression for the teardown ordering: a session admitted after a
  // CancelAll sweep must not escape wind-down — destruction republishes
  // the shutdown flag under the live-list mutex and sweeps again, so
  // either the sweep or the submitting thread itself cancels it.
  DiscoveryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.queue_capacity = 8;
  auto service = std::make_unique<DiscoveryService>(
      MakeCatalog(), service_options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < 4; ++i) {
    auto session = service->Submit(
        workload()[static_cast<size_t>(i) % workload().size()].list);
    ASSERT_TRUE(session.ok());
    sessions.push_back(*session);
  }
  service->CancelAll();
  auto late = service->Submit(workload()[1].list);  // missed the sweep
  ASSERT_TRUE(late.ok());
  sessions.push_back(*late);
  service.reset();
  for (auto& s : sessions) {
    ASSERT_TRUE(IsTerminal(s->Wait())) << SessionStateToString(s->Poll());
  }
}

// ---------------------------------------------- RequestQueue / Session

/// A queued-only session: never dispatched, so queue and state-machine
/// edges can be driven by hand. Pins a snapshot of a tiny standalone
/// catalog, like every real session pins the serving catalog's.
std::shared_ptr<Session> MakeIdleSession(Session::Id id,
                                         bool collect_trace = false) {
  static TableCatalog* catalog = [] {
    auto schema = Schema::Make({
        {"e", DataType::kString, FieldRole::kEntity},
        {"val", DataType::kDouble, FieldRole::kMeasure},
    });
    Table t(*schema);
    EXPECT_TRUE(
        t.AppendRow({Value::String("entity"), Value::Double(1.0)}).ok());
    return new TableCatalog(std::move(t), PaleoOptions{});
  }();
  ServiceRequest request;
  request.input.Append("entity", 1.0);
  request.collect_trace = collect_trace;
  return std::make_shared<Session>(id, std::move(request), PaleoOptions{},
                                   catalog->Current());
}

TEST(RequestQueueTest, CapacityOneShedsAndRecoversAcrossClose) {
  RequestQueue queue(1);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.size(), 0u);
  auto s1 = MakeIdleSession(1);
  auto s2 = MakeIdleSession(2);
  auto s3 = MakeIdleSession(3);
  EXPECT_TRUE(queue.TryPush(s1));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_FALSE(queue.TryPush(s2));  // at capacity: shed
  EXPECT_EQ(queue.Pop(), s1);       // FIFO head
  EXPECT_TRUE(queue.TryPush(s2));   // capacity freed by the pop
  queue.Close();
  EXPECT_FALSE(queue.TryPush(s3));  // closed: shed
  EXPECT_EQ(queue.Pop(), s2);       // queued work still drains
  EXPECT_EQ(queue.Pop(), nullptr);  // then nullptr forever
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(RequestQueueTest, CloseUnblocksEveryWaiter) {
  RequestQueue queue(4);
  constexpr int kWaiters = 3;
  std::vector<std::shared_ptr<Session>> got(kWaiters);
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&queue, &got, i] { got[i] = queue.Pop(); });
  }
  // Let the waiters park on the empty queue, then close it under them;
  // every Pop must return (with nullptr) instead of hanging.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Close();
  for (auto& t : waiters) t.join();
  for (auto& s : got) EXPECT_EQ(s, nullptr);
}

TEST(RequestQueueTest, CancelWhileQueuedIsStillDelivered) {
  // Cancel only trips the token; the terminal state belongs to the
  // dispatcher, so a cancelled session must still come out of Pop (the
  // service's Dispatch finalizes it without running).
  RequestQueue queue(2);
  auto session = MakeIdleSession(7);
  ASSERT_TRUE(queue.TryPush(session));
  session->Cancel();
  EXPECT_TRUE(session->cancellation_token()->cancelled());
  EXPECT_EQ(session->Poll(), SessionState::kQueued);
  auto popped = queue.Pop();
  ASSERT_EQ(popped, session);
  EXPECT_EQ(popped->budget().Check(0), TerminationReason::kCancelled);
  popped->FinishWithoutRunning(TerminationReason::kCancelled);
  EXPECT_EQ(session->Wait(), SessionState::kCancelled);
  const ReverseEngineerReport* report = session->report();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->termination, TerminationReason::kCancelled);
  EXPECT_EQ(session->trace(), nullptr);  // collect_trace was off
}

TEST(SessionTest, TraceWithheldUntilTerminal) {
  // Regression: trace() used to hand out the live span tree while the
  // dispatching worker was still writing it (obs::Trace is not
  // thread-safe); the contract is nullptr until the terminal state.
  auto session = MakeIdleSession(9, /*collect_trace=*/true);
  EXPECT_EQ(session->trace(), nullptr);  // queued: tree mid-construction
  session->MarkRunning();
  EXPECT_EQ(session->trace(), nullptr);  // running: worker still writing
  ReverseEngineerReport report;
  report.termination = TerminationReason::kCompleted;
  session->Finish(std::move(report));
  EXPECT_EQ(session->Poll(), SessionState::kDone);
  auto trace = session->trace();
  ASSERT_NE(trace, nullptr);
  ASSERT_NE(trace->FindSpan("session"), nullptr);
  EXPECT_NE(trace->FindSpan("queued"), nullptr);
}

}  // namespace
}  // namespace paleo
