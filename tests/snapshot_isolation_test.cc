// Snapshot-isolation differential suite: concurrent ingest storms
// racing Submit/Wait/Cancel on a live DiscoveryService. Every
// completed session's report must equal a standalone single-threaded
// run against the snapshot it pinned at admission — ingestion
// publishing versions underneath a running session must never change
// its answer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/ingestor.h"
#include "catalog/table_catalog.h"
#include "common/mutex.h"
#include "common/random.h"
#include "datagen/tpch_gen.h"
#include "engine/exec_context.h"
#include "engine/executor.h"
#include "paleo/paleo.h"
#include "service/discovery_service.h"
#include "service/session.h"
#include "workload/workload.h"

namespace paleo {
namespace {

class SnapshotIsolationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchGenOptions gen;
    gen.scale_factor = 0.003;
    auto table = TpchGen::Generate(gen);
    ASSERT_TRUE(table.ok());
    table_ = new Table(std::move(*table));

    WorkloadOptions wl;
    wl.families = {QueryFamily::kMaxA, QueryFamily::kSumAB};
    wl.predicate_sizes = {1, 2};
    wl.ks = {5, 10};
    wl.queries_per_config = 2;
    auto workload = WorkloadGen::Generate(*table_, wl);
    ASSERT_TRUE(workload.ok());
    ASSERT_GE(workload->size(), 4u);
    workload_ = new std::vector<WorkloadQuery>(std::move(*workload));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete table_;
    table_ = nullptr;
  }

  static const Table& table() { return *table_; }
  static const std::vector<WorkloadQuery>& workload() { return *workload_; }

  static std::shared_ptr<TableCatalog> MakeCatalog() {
    return std::make_shared<TableCatalog>(Table(table()), PaleoOptions{});
  }

  static std::vector<Value> RowAt(RowId r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(table().num_columns()));
    for (int c = 0; c < table().num_columns(); ++c) {
      row.push_back(table().GetValue(r, c));
    }
    return row;
  }

  /// The differential check: re-run the session's input standalone on
  /// the snapshot the session pinned and compare everything the
  /// report commits to.
  static void ExpectMatchesPinnedSnapshot(const Session& session,
                                          const std::string& context) {
    RunRequest reference;
    reference.input = &session.input();
    auto expected = session.snapshot().engine().Run(reference);
    ASSERT_TRUE(expected.ok()) << context;
    const ReverseEngineerReport* report = session.report();
    ASSERT_NE(report, nullptr) << context;
    EXPECT_EQ(report->found(), expected->found()) << context;
    EXPECT_EQ(report->valid.size(), expected->valid.size()) << context;
    if (!report->valid.empty() && !expected->valid.empty()) {
      EXPECT_TRUE(report->valid[0].query == expected->valid[0].query)
          << context;
    }
    EXPECT_EQ(report->executed_queries, expected->executed_queries)
        << context;
    EXPECT_EQ(report->skip_events, expected->skip_events) << context;
  }

 private:
  static Table* table_;
  static std::vector<WorkloadQuery>* workload_;
};

Table* SnapshotIsolationTest::table_ = nullptr;
std::vector<WorkloadQuery>* SnapshotIsolationTest::workload_ = nullptr;

TEST_F(SnapshotIsolationTest, SessionPinsAdmissionVersionForWholeRun) {
  auto catalog = MakeCatalog();
  DiscoveryServiceOptions options;
  options.num_workers = 1;
  DiscoveryService service(catalog, options);
  Ingestor ingestor(catalog.get());

  auto session = service.Submit(workload()[0].list);
  ASSERT_TRUE(session.ok());
  const uint64_t pinned = (*session)->snapshot_version();
  EXPECT_EQ(pinned, 1u);

  // Publish versions underneath the (possibly still running) session.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ingestor.AppendRow(RowAt(static_cast<RowId>(i))).ok());
  }
  EXPECT_EQ(catalog->CurrentVersion(), 4u);

  ASSERT_EQ((*session)->Wait(), SessionState::kDone);
  // The session never migrated off its admission snapshot.
  EXPECT_EQ((*session)->snapshot_version(), pinned);
  ExpectMatchesPinnedSnapshot(**session, "pinned run");

  // A new admission pins the latest version.
  auto later = service.Submit(workload()[0].list);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ((*later)->snapshot_version(), 4u);
  ASSERT_EQ((*later)->Wait(), SessionState::kDone);
  ExpectMatchesPinnedSnapshot(**later, "post-ingest run");
}

TEST_F(SnapshotIsolationTest, IngestStormDifferentialAgainstPinnedSnapshots) {
  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 4;
  auto catalog = MakeCatalog();
  DiscoveryServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  DiscoveryService service(catalog, options);
  Ingestor ingestor(catalog.get());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(0x5eed5eedULL);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::vector<Value>> batch;
      const int n = static_cast<int>(rng.UniformInt(1, 8));
      for (int i = 0; i < n; ++i) {
        batch.push_back(RowAt(static_cast<RowId>(
            rng.Uniform(static_cast<uint64_t>(table().num_rows())))));
      }
      Status status = ingestor.Append(batch);
      if (!status.ok()) {
        ADD_FAILURE() << "ingest failed: " << status.ToString();
        break;
      }
    }
  });

  Mutex admitted_mutex;
  std::vector<std::pair<std::shared_ptr<Session>, uint64_t>> admitted;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xC11E47ULL + static_cast<uint64_t>(c));
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t wi = static_cast<size_t>(
            rng.Uniform(static_cast<uint64_t>(workload().size())));
        auto session = service.Submit(workload()[wi].list);
        if (!session.ok()) continue;
        const uint64_t at_submit = catalog->CurrentVersion();
        if (rng.Bernoulli(0.2)) (*session)->Cancel();
        MutexLock lock(admitted_mutex);
        admitted.emplace_back(*session, at_submit);
      }
    });
  }
  for (auto& t : clients) t.join();

  std::vector<SessionState> states;
  {
    MutexLock lock(admitted_mutex);
    for (size_t i = 0; i < admitted.size(); ++i) {
      states.push_back(
          admitted[i].first->WaitFor(std::chrono::seconds(60)));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  int done = 0;
  for (size_t i = 0; i < admitted.size(); ++i) {
    auto& [session, version_at_submit] = admitted[i];
    ASSERT_TRUE(IsTerminal(states[i]));
    // The pinned version can be at most one publish older than the
    // version read just after Submit returned, and never newer than
    // the latest.
    EXPECT_LE(session->snapshot_version(), catalog->CurrentVersion());
    if (states[i] != SessionState::kDone) continue;
    ++done;
    const std::string context =
        "session " + std::to_string(i) + " pinned v" +
        std::to_string(session->snapshot_version()) + " (submit saw v" +
        std::to_string(version_at_submit) + ")";
    ExpectMatchesPinnedSnapshot(*session, context);
  }
  EXPECT_GT(done, 0);
  EXPECT_GT(ingestor.stats().batches, 0u);
}

TEST_F(SnapshotIsolationTest, IngestSealsChunksUnderPinnedScans) {
  // Small chunks so the append storm continuously fills the open tail
  // chunk, seals it, and opens the next one while pinned readers scan.
  PaleoOptions chunked;
  chunked.chunk_rows = 64;
  auto catalog =
      std::make_shared<TableCatalog>(Table(table()), std::move(chunked));
  Ingestor ingestor(catalog.get());

  auto pinned = catalog->Current();
  ASSERT_EQ(pinned->table().chunk_rows(), 64u);
  const size_t pinned_chunks = pinned->table().num_chunks();
  const uint64_t pinned_epoch = pinned->table().epoch();

  Executor ex;
  const WorkloadQuery& wq = workload()[0];
  auto reference = ex.Execute(pinned->table(), wq.query, ExecContext{});
  ASSERT_TRUE(reference.ok());

  // Append enough rows to seal several 64-row chunks, re-executing the
  // pinned snapshot between batches: its chunk layout, zone maps, and
  // answer must be frozen however far ingestion advances.
  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::thread reader([&] {
    Executor scan;
    while (!stop.load(std::memory_order_relaxed)) {
      auto again = scan.Execute(pinned->table(), wq.query, ExecContext{});
      if (!again.ok() || !(*again == *reference)) {
        mismatch.store(true);
        return;
      }
    }
  });
  constexpr int kBatches = 20;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<std::vector<Value>> batch;
    for (int i = 0; i < 16; ++i) {
      batch.push_back(RowAt(static_cast<RowId>(
          (static_cast<size_t>(b) * 16 + static_cast<size_t>(i)) %
          table().num_rows())));
    }
    ASSERT_TRUE(ingestor.Append(batch).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(pinned->table().num_chunks(), pinned_chunks);
  EXPECT_EQ(pinned->table().epoch(), pinned_epoch);

  // The latest snapshot grew into freshly sealed chunks: the layout
  // still tiles [0, num_rows) in 64-row chunks with zones per column.
  auto latest = catalog->Current();
  const Table& grown = latest->table();
  EXPECT_EQ(grown.num_rows(), table().num_rows() + kBatches * 16);
  ASSERT_GT(grown.num_chunks(), pinned_chunks);
  RowId next = 0;
  for (const Chunk& ch : grown.chunks()) {
    EXPECT_EQ(ch.begin_row, next);
    EXPECT_LE(ch.num_rows(), grown.chunk_rows());
    EXPECT_EQ(ch.zones.size(),
              static_cast<size_t>(grown.num_columns()));
    next = ch.end_row;
  }
  EXPECT_EQ(static_cast<size_t>(next), grown.num_rows());

  // And the grown snapshot answers through its own chunks (differential
  // against a zone-skip-free scan of the same table).
  Executor grown_ex;
  auto skip = grown_ex.Execute(grown, wq.query, ExecContext{});
  auto noskip = grown_ex.Execute(grown, wq.query,
                                 ExecContext{.zone_map_skipping = false});
  ASSERT_TRUE(skip.ok());
  ASSERT_TRUE(noskip.ok());
  EXPECT_TRUE(*skip == *noskip);
}

TEST_F(SnapshotIsolationTest, ReadersObserveMonotonicVersions) {
  auto catalog = MakeCatalog();
  Ingestor ingestor(catalog.get());
  constexpr int kReaders = 4;
  constexpr int kBatches = 24;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<bool> violation{false};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      size_t last_rows = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = catalog->Current();
        // Monotonic publication: version and row count never move
        // backwards between two pins by the same reader, and a
        // snapshot's own row count matches its table's.
        if (snapshot->version() < last_version ||
            snapshot->num_rows() < last_rows ||
            snapshot->num_rows() != snapshot->table().num_rows()) {
          violation.store(true);
        }
        last_version = snapshot->version();
        last_rows = snapshot->num_rows();
      }
    });
  }
  for (int b = 0; b < kBatches; ++b) {
    const RowId r = static_cast<RowId>(
        static_cast<size_t>(b) % table().num_rows());
    ASSERT_TRUE(ingestor.AppendRow(RowAt(r)).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(catalog->CurrentVersion(), 1u + kBatches);
  EXPECT_EQ(catalog->Current()->num_rows(), table().num_rows() + kBatches);
}

}  // namespace
}  // namespace paleo
