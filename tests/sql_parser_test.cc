// Tests for the template-dialect SQL parser, including a ToSql
// round-trip property suite over generated workloads.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "engine/sql_parser.h"
#include "workload/workload.h"

namespace paleo {
namespace {

Schema TestSchema() { return TrafficGen::MakeSchema(); }

TEST(SqlParserTest, ParsesTheIntroductionQuery) {
  Schema schema = TestSchema();
  auto q = ParseTopKQuery(
      "SELECT name, max(minutes) FROM traffic WHERE state = 'CA' "
      "GROUP BY name ORDER BY max(minutes) DESC LIMIT 5",
      schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFn::kMax);
  EXPECT_EQ(q->expr, RankExpr::Column(schema.FieldIndex("minutes")));
  EXPECT_EQ(q->k, 5);
  EXPECT_EQ(q->order, SortOrder::kDesc);
  ASSERT_EQ(q->predicate.size(), 1);
  EXPECT_EQ(q->predicate.atoms()[0].column, schema.FieldIndex("state"));
  EXPECT_EQ(q->predicate.atoms()[0].value, Value::String("CA"));
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  Schema schema = TestSchema();
  auto q = ParseTopKQuery(
      "select name, SUM(minutes) from t group by name "
      "order by sum(minutes) desc limit 10",
      schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFn::kSum);
}

TEST(SqlParserTest, TwoColumnExpressions) {
  Schema schema = TestSchema();
  auto add = ParseTopKQuery(
      "SELECT name, sum(minutes + sms) FROM t GROUP BY name "
      "ORDER BY sum(minutes + sms) DESC LIMIT 5",
      schema);
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  EXPECT_EQ(add->expr, RankExpr::Add(schema.FieldIndex("minutes"),
                                     schema.FieldIndex("sms")));
  auto mul = ParseTopKQuery(
      "SELECT name, sum(sms * data_mb) FROM t GROUP BY name "
      "ORDER BY sum(data_mb * sms) DESC LIMIT 5",
      schema);
  // Commutative canonicalization makes the two orders equal.
  ASSERT_TRUE(mul.ok()) << mul.status().ToString();
  EXPECT_EQ(mul->expr, RankExpr::Mul(schema.FieldIndex("sms"),
                                     schema.FieldIndex("data_mb")));
}

TEST(SqlParserTest, NoAggregationOmitsGroupBy) {
  Schema schema = TestSchema();
  auto q = ParseTopKQuery(
      "SELECT name, minutes FROM t ORDER BY minutes ASC LIMIT 3", schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFn::kNone);
  EXPECT_EQ(q->order, SortOrder::kAsc);
  EXPECT_TRUE(q->predicate.IsTrue());
}

TEST(SqlParserTest, MultiAtomPredicateWithEscapedQuote) {
  Schema schema = TestSchema();
  auto q = ParseTopKQuery(
      "SELECT name, max(minutes) FROM t WHERE state = 'CA' AND "
      "city = 'O''Fallon' GROUP BY name ORDER BY max(minutes) DESC "
      "LIMIT 5",
      schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicate.size(), 2);
  bool found = false;
  for (const AtomicPredicate& a : q->predicate.atoms()) {
    if (a.value == Value::String("O'Fallon")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SqlParserTest, NumericLiteralsFollowColumnType) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"rate", DataType::kDouble, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  auto q = ParseTopKQuery(
      "SELECT e, max(v) FROM t WHERE year = 1995 AND rate = 0.05 "
      "GROUP BY e ORDER BY max(v) DESC LIMIT 5",
      *schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  for (const AtomicPredicate& a : q->predicate.atoms()) {
    if (a.column == 1) {
      EXPECT_EQ(a.value, Value::Int64(1995));
    }
    if (a.column == 2) {
      EXPECT_EQ(a.value, Value::Double(0.05));
    }
  }
  // Decimal literal on an INT64 column is a type error.
  EXPECT_TRUE(ParseTopKQuery(
                  "SELECT e, max(v) FROM t WHERE year = 19.5 GROUP BY e "
                  "ORDER BY max(v) DESC LIMIT 5",
                  *schema)
                  .status()
                  .IsTypeError());
}

TEST(SqlParserTest, RejectsMalformedQueries) {
  Schema schema = TestSchema();
  auto expect_bad = [&](const char* sql) {
    EXPECT_FALSE(ParseTopKQuery(sql, schema).ok()) << sql;
  };
  expect_bad("");
  expect_bad("SELECT name FROM t ORDER BY minutes DESC LIMIT 5");
  expect_bad("SELECT city, max(minutes) FROM t GROUP BY city "
             "ORDER BY max(minutes) DESC LIMIT 5");  // non-entity
  expect_bad("SELECT name, max(minutes) FROM t ORDER BY max(minutes) "
             "DESC LIMIT 5");  // aggregate without GROUP BY
  expect_bad("SELECT name, minutes FROM t GROUP BY name ORDER BY minutes "
             "DESC LIMIT 5");  // GROUP BY without aggregate
  expect_bad("SELECT name, max(nope) FROM t GROUP BY name ORDER BY "
             "max(nope) DESC LIMIT 5");  // unknown column
  expect_bad("SELECT name, max(minutes) FROM t GROUP BY name ORDER BY "
             "max(sms) DESC LIMIT 5");  // mismatched rankings
  expect_bad("SELECT name, max(minutes) FROM t GROUP BY name ORDER BY "
             "max(minutes) DESC LIMIT 0");  // bad k
  expect_bad("SELECT name, max(minutes) FROM t GROUP BY name ORDER BY "
             "max(minutes) DESC LIMIT 5 extra");  // trailing tokens
  expect_bad("SELECT name, max(minutes) FROM t WHERE state = 'CA GROUP "
             "BY name ORDER BY max(minutes) DESC LIMIT 5");  // bad quote
  expect_bad("SELECT name, max(minutes) FROM t WHERE state = 'CA' AND "
             "state = 'NY' GROUP BY name ORDER BY max(minutes) DESC "
             "LIMIT 5");  // duplicate column
  expect_bad("SELECT name, median(minutes) FROM t GROUP BY name ORDER "
             "BY median(minutes) DESC LIMIT 5");  // unknown aggregate
}

TEST(SqlParserTest, RoundTripsGeneratedWorkloads) {
  auto table = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(table.ok());
  WorkloadOptions options;
  options.families = {QueryFamily::kMaxA,  QueryFamily::kAvgA,
                      QueryFamily::kSumA,  QueryFamily::kSumAB,
                      QueryFamily::kMulAB, QueryFamily::kNone};
  options.predicate_sizes = {1, 2};
  options.ks = {5, 20};
  options.queries_per_config = 2;
  auto workload = WorkloadGen::Generate(*table, options);
  ASSERT_TRUE(workload.ok());
  ASSERT_GT(workload->size(), 10u);
  for (const WorkloadQuery& wq : *workload) {
    std::string sql = wq.query.ToSql(table->schema());
    auto parsed = ParseTopKQuery(sql, table->schema());
    ASSERT_TRUE(parsed.ok()) << sql << "\n" << parsed.status().ToString();
    EXPECT_TRUE(*parsed == wq.query) << sql;
  }
}

}  // namespace
}  // namespace paleo
