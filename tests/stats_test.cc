// Tests for column statistics, top-entity lists, and the catalog.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "stats/catalog.h"
#include "stats/column_stats.h"
#include "stats/top_entities.h"

namespace paleo {
namespace {

TEST(ColumnStatsTest, Int64Stats) {
  Column col(DataType::kInt64);
  for (int64_t v : {5, -3, 5, 10, 0}) col.AppendInt64(v);
  ColumnStats s = ColumnStats::Build(col);
  EXPECT_EQ(s.row_count, 5);
  EXPECT_EQ(s.min, -3.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_EQ(s.distinct_count, 4);
}

TEST(ColumnStatsTest, DoubleStats) {
  Column col(DataType::kDouble);
  for (double v : {1.5, 1.5, 2.5}) col.AppendDouble(v);
  ColumnStats s = ColumnStats::Build(col);
  EXPECT_EQ(s.min, 1.5);
  EXPECT_EQ(s.max, 2.5);
  EXPECT_EQ(s.distinct_count, 2);
}

TEST(ColumnStatsTest, StringDistinctCountsUsedCodesOnly) {
  Column base(DataType::kString);
  for (const char* s : {"a", "b", "c", "a"}) base.AppendString(s);
  ColumnStats s1 = ColumnStats::Build(base);
  EXPECT_EQ(s1.distinct_count, 3);
  // A gathered subset shares the 3-entry dictionary but uses 1 code.
  Column subset = base.Gather({0, 3});
  ColumnStats s2 = ColumnStats::Build(subset);
  EXPECT_EQ(s2.distinct_count, 1);
}

TEST(ColumnStatsTest, EmptyColumn) {
  Column col(DataType::kInt64);
  ColumnStats s = ColumnStats::Build(col);
  EXPECT_EQ(s.row_count, 0);
  EXPECT_EQ(s.distinct_count, 0);
}

Table RankedTable() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  // Entity maxima: a=90 (rows 10,90), b=50, c=70, d=20.
  struct Row {
    const char* e;
    int64_t v;
  };
  for (const Row& r : std::initializer_list<Row>{
           {"a", 10}, {"a", 90}, {"b", 50}, {"c", 70}, {"d", 20}}) {
    EXPECT_TRUE(t.AppendRow({Value::String(r.e), Value::Int64(r.v)}).ok());
  }
  return t;
}

TEST(TopEntityListTest, RanksByPerEntityMax) {
  Table t = RankedTable();
  TopEntityList top = TopEntityList::Build(t, 1, 10);
  ASSERT_EQ(top.size(), 4u);
  const StringDictionary& dict = *t.entity_column().dict();
  EXPECT_EQ(dict.Get(top.entity_codes()[0]), "a");
  EXPECT_EQ(dict.Get(top.entity_codes()[1]), "c");
  EXPECT_EQ(dict.Get(top.entity_codes()[2]), "b");
  EXPECT_EQ(dict.Get(top.entity_codes()[3]), "d");
  EXPECT_EQ(top.values(), (std::vector<double>{90, 70, 50, 20}));
}

TEST(TopEntityListTest, TruncatesToTopN) {
  Table t = RankedTable();
  TopEntityList top = TopEntityList::Build(t, 1, 2);
  ASSERT_EQ(top.size(), 2u);
  const StringDictionary& dict = *t.entity_column().dict();
  EXPECT_EQ(dict.Get(top.entity_codes()[0]), "a");
  EXPECT_EQ(dict.Get(top.entity_codes()[1]), "c");
  EXPECT_TRUE(top.ContainsEntity(top.entity_codes()[0]));
}

TEST(TopEntityListTest, CountIntersection) {
  Table t = RankedTable();
  TopEntityList top = TopEntityList::Build(t, 1, 2);  // {a, c}
  const StringDictionary& dict = *t.entity_column().dict();
  uint32_t a = dict.Lookup("a"), b = dict.Lookup("b"), c = dict.Lookup("c");
  EXPECT_EQ(top.CountIntersection({a, b, c}), 2);
  EXPECT_EQ(top.CountIntersection({b}), 0);
  EXPECT_EQ(top.CountIntersection({}), 0);
}

TEST(StatsCatalogTest, BuildsPerColumnStructures) {
  TrafficGenOptions options;
  options.num_customers = 50;
  auto table = TrafficGen::Generate(options);
  ASSERT_TRUE(table.ok());
  CatalogOptions catalog_options;
  catalog_options.histogram_cells = 100;
  catalog_options.top_entities = 25;
  StatsCatalog catalog = StatsCatalog::Build(*table, catalog_options);

  const Schema& schema = table->schema();
  EXPECT_EQ(catalog.table_rows(),
            static_cast<int64_t>(table->num_rows()));
  for (int m : schema.measure_indices()) {
    EXPECT_EQ(catalog.histogram(m).total_count(),
              static_cast<int64_t>(table->num_rows()));
    EXPECT_EQ(catalog.histogram(m).num_cells(), 100);
    EXPECT_LE(catalog.top_entities(m).size(), 25u);
    EXPECT_GT(catalog.top_entities(m).size(), 0u);
    EXPECT_GE(catalog.column_stats(m).max, catalog.column_stats(m).min);
  }
  // Non-measure columns get stats but no histograms/top lists.
  for (int d : schema.dimension_indices()) {
    EXPECT_GT(catalog.column_stats(d).distinct_count, 0);
    EXPECT_EQ(catalog.histogram(d).total_count(), 0);
    EXPECT_EQ(catalog.top_entities(d).size(), 0u);
  }
}

TEST(StatsCatalogTest, ValueCountsMatchData) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  struct Row {
    const char* e;
    const char* state;
    int64_t year;
  };
  for (const Row& r : std::initializer_list<Row>{{"a", "CA", 2020},
                                                 {"b", "CA", 2021},
                                                 {"c", "NY", 2020},
                                                 {"d", "CA", 2020}}) {
    ASSERT_TRUE(t.AppendRow({Value::String(r.e), Value::String(r.state),
                             Value::Int64(r.year), Value::Int64(1)})
                    .ok());
  }
  StatsCatalog catalog = StatsCatalog::Build(t);
  int state = schema->FieldIndex("state");
  int year = schema->FieldIndex("year");
  EXPECT_EQ(catalog.ValueCount(state, Value::String("CA")), 3);
  EXPECT_EQ(catalog.ValueCount(state, Value::String("NY")), 1);
  EXPECT_EQ(catalog.ValueCount(state, Value::String("TX")), 0);
  EXPECT_EQ(catalog.ValueCount(year, Value::Int64(2020)), 3);
  EXPECT_EQ(catalog.ValueCount(year, Value::Int64(1999)), 0);
  // Measure columns have no value counts.
  EXPECT_EQ(catalog.ValueCount(schema->FieldIndex("v"), Value::Int64(1)),
            0);
}

TEST(StatsCatalogTest, PredicateSelectivityMultipliesFrequencies) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"plan", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table t(*schema);
  // 4 rows: CA appears 2/4, XL appears 1/4.
  const char* states[] = {"CA", "CA", "NY", "TX"};
  const char* plans[] = {"XL", "M", "M", "S"};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("e" + std::to_string(i)),
                             Value::String(states[i]),
                             Value::String(plans[i]), Value::Int64(i)})
                    .ok());
  }
  StatsCatalog catalog = StatsCatalog::Build(t);
  int state = schema->FieldIndex("state");
  int plan = schema->FieldIndex("plan");
  EXPECT_DOUBLE_EQ(catalog.PredicateSelectivity(Predicate()), 1.0);
  EXPECT_DOUBLE_EQ(catalog.PredicateSelectivity(
                       Predicate::Atom(state, Value::String("CA"))),
                   0.5);
  Predicate both({{state, Value::String("CA")},
                  {plan, Value::String("XL")}});
  EXPECT_DOUBLE_EQ(catalog.PredicateSelectivity(both), 0.5 * 0.25);
  // Unknown values drive the estimate to zero.
  EXPECT_DOUBLE_EQ(catalog.PredicateSelectivity(
                       Predicate::Atom(state, Value::String("ZZ"))),
                   0.0);
}

}  // namespace
}  // namespace paleo
