// Tests for the columnar storage: dictionary, columns, table.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace paleo {
namespace {

TEST(DictionaryTest, GetOrAddAssignsDenseCodes) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Get(0), "a");
  EXPECT_EQ(dict.Get(1), "b");
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  StringDictionary dict;
  dict.GetOrAdd("x");
  EXPECT_EQ(dict.Lookup("x"), 0u);
  EXPECT_EQ(dict.Lookup("y"), StringDictionary::kInvalidCode);
}

TEST(DictionaryTest, HandlesEmptyString) {
  StringDictionary dict;
  uint32_t code = dict.GetOrAdd("");
  EXPECT_EQ(dict.Lookup(""), code);
  EXPECT_EQ(dict.Get(code), "");
}

TEST(ColumnTest, Int64AppendAndRead) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-7);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Int64At(0), 5);
  EXPECT_EQ(col.Int64At(1), -7);
  EXPECT_EQ(col.NumericAt(1), -7.0);
  EXPECT_EQ(col.GetValue(0), Value::Int64(5));
}

TEST(ColumnTest, DoubleAppendAndRead) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.25);
  EXPECT_EQ(col.DoubleAt(0), 1.25);
  EXPECT_EQ(col.NumericAt(0), 1.25);
  EXPECT_EQ(col.GetValue(0), Value::Double(1.25));
}

TEST(ColumnTest, StringAppendUsesDictionary) {
  Column col(DataType::kString);
  col.AppendString("CA");
  col.AppendString("NY");
  col.AppendString("CA");
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_EQ(col.StringAt(1), "NY");
  EXPECT_EQ(col.dict()->size(), 2u);
}

TEST(ColumnTest, CheckedAppendEnforcesTypes) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.Append(Value::Int64(1)).ok());
  EXPECT_TRUE(col.Append(Value::String("x")).IsTypeError());
  EXPECT_TRUE(col.Append(Value::Double(1.0)).IsTypeError());

  Column dcol(DataType::kDouble);
  // Int64 widens into Double columns.
  EXPECT_TRUE(dcol.Append(Value::Int64(3)).ok());
  EXPECT_EQ(dcol.DoubleAt(0), 3.0);
  EXPECT_TRUE(dcol.Append(Value::String("x")).IsTypeError());
}

TEST(ColumnTest, SettersOverwriteInPlace) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.SetInt64(0, 9);
  EXPECT_EQ(col.Int64At(0), 9);
}

TEST(ColumnTest, GatherPreservesOrderAndSharesDictionary) {
  Column col(DataType::kString);
  for (const char* s : {"a", "b", "c", "d"}) col.AppendString(s);
  Column picked = col.Gather({3, 1});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked.StringAt(0), "d");
  EXPECT_EQ(picked.StringAt(1), "b");
  EXPECT_EQ(picked.dict().get(), col.dict().get());
}

Schema TestSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"dim", DataType::kString, FieldRole::kDimension},
      {"val", DataType::kInt64, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

TEST(TableTest, AppendRowRoundTrip) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("e1"), Value::String("x"),
                           Value::Int64(10)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::String("e2"), Value::String("y"),
                           Value::Int64(20)})
                  .ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("e1"));
  EXPECT_EQ(t.GetValue(1, 2), Value::Int64(20));
}

TEST(TableTest, AppendRowRejectsWrongArityAtomically) {
  Table t(TestSchema());
  EXPECT_TRUE(t.AppendRow({Value::String("e1")}).IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, AppendRowRejectsWrongTypeWithoutPartialWrite) {
  Table t(TestSchema());
  // Type error in the last column must not leave the first columns
  // longer than the others.
  EXPECT_TRUE(t.AppendRow({Value::String("e1"), Value::String("x"),
                           Value::String("oops")})
                  .IsTypeError());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.CheckConsistent().ok());
}

TEST(TableTest, AppendRowsBumpsEpochOncePerBatch) {
  Table t(TestSchema());
  std::vector<std::vector<Value>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back({Value::String("e" + std::to_string(i)),
                     Value::String("x"), Value::Int64(i)});
  }
  const uint64_t before = t.epoch();
  ASSERT_TRUE(t.AppendRows(batch).ok());
  const uint64_t after_batch = t.epoch();
  EXPECT_NE(after_batch, before);
  EXPECT_EQ(t.num_rows(), 8u);

  // Regression: a batch is ONE epoch bump, not one per row. Epoch
  // values are process-unique and drawn from a shared counter, so
  // appending the same rows one at a time must consume exactly 8
  // draws where the batch consumed 1.
  Table row_at_a_time(TestSchema());
  const uint64_t row_before = row_at_a_time.epoch();
  for (const auto& row : batch) {
    ASSERT_TRUE(row_at_a_time.AppendRow(row).ok());
  }
  EXPECT_EQ(row_at_a_time.epoch() - row_before, 8u);
  EXPECT_EQ(after_batch - before, 1u);
}

TEST(TableTest, AppendRowsRejectsBadBatchAtomically) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("e1"), Value::String("x"),
                           Value::Int64(1)})
                  .ok());
  const uint64_t before = t.epoch();
  std::vector<std::vector<Value>> batch = {
      {Value::String("e2"), Value::String("y"), Value::Int64(2)},
      {Value::String("e3"), Value::String("z"), Value::String("oops")},
  };
  EXPECT_TRUE(t.AppendRows(batch).IsTypeError());
  // All-or-nothing: no rows landed, the epoch did not move.
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.epoch(), before);
  EXPECT_TRUE(t.CheckConsistent().ok());
}

TEST(TableTest, DeepCopyClonesDictionariesAndKeepsEpoch) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("x"),
                           Value::Int64(1)})
                  .ok());
  Table copy = t.DeepCopy();
  EXPECT_EQ(copy.epoch(), t.epoch());
  EXPECT_NE(copy.column(0).dict().get(), t.column(0).dict().get());
  // Appending a new entity to the copy must not grow the original's
  // dictionary (a plain Table copy would share it).
  ASSERT_TRUE(copy.AppendRow({Value::String("b"), Value::String("y"),
                              Value::Int64(2)})
                  .ok());
  EXPECT_EQ(t.NumEntities(), 1u);
  EXPECT_EQ(copy.NumEntities(), 2u);
  EXPECT_NE(copy.epoch(), t.epoch());
}

TEST(TableTest, EntityHelpers) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("x"),
                           Value::Int64(1)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::String("b"), Value::String("x"),
                           Value::Int64(2)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("y"),
                           Value::Int64(3)})
                  .ok());
  EXPECT_EQ(t.NumEntities(), 2u);
  EXPECT_EQ(t.EntityCodeAt(0), t.EntityCodeAt(2));
  EXPECT_NE(t.EntityCodeAt(0), t.EntityCodeAt(1));
}

TEST(TableTest, GatherProducesConsistentSlice) {
  Table t(TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("e" + std::to_string(i % 3)),
                             Value::String(i % 2 ? "odd" : "even"),
                             Value::Int64(i)})
                    .ok());
  }
  Table slice = t.Gather({1, 4, 7});
  EXPECT_EQ(slice.num_rows(), 3u);
  EXPECT_EQ(slice.GetValue(0, 2), Value::Int64(1));
  EXPECT_EQ(slice.GetValue(2, 2), Value::Int64(7));
  // Shared dictionary: codes agree with the base table.
  EXPECT_EQ(slice.EntityCodeAt(0), t.EntityCodeAt(1));
}

TEST(TableTest, CheckConsistentDetectsRaggedColumns) {
  Table t(TestSchema());
  t.mutable_column(0)->AppendString("a");
  // Columns 1 and 2 left empty -> inconsistent.
  EXPECT_TRUE(t.CheckConsistent().IsInternal());
}

TEST(TableTest, ToStringRendersHeaderAndRows) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("e1"), Value::String("x"),
                           Value::Int64(10)})
                  .ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("dim"), std::string::npos);
  EXPECT_NE(s.find("e1"), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

TEST(TableTest, MemoryUsageGrowsWithData) {
  Table t(TestSchema());
  size_t before = t.MemoryUsage();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("e" + std::to_string(i)),
                             Value::String("x"), Value::Int64(i)})
                    .ok());
  }
  EXPECT_GT(t.MemoryUsage(), before);
}

}  // namespace
}  // namespace paleo
