// Tests for CSV relation import/export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/traffic_gen.h"
#include "io/table_io.h"

namespace paleo {
namespace {

TEST(TableIoTest, ParsesAnnotatedHeader) {
  auto table = TableIo::FromCsv(
      "name:STRING:ENTITY,state:STRING:DIM,minutes:INT64:MEASURE,"
      "id:INT64:KEY\n"
      "John Smith,CA,654,1\n"
      "Jane O'Neal,CA,699,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  const Schema& schema = table->schema();
  EXPECT_EQ(schema.entity_index(), 0);
  EXPECT_EQ(schema.dimension_indices(), (std::vector<int>{1}));
  EXPECT_EQ(schema.measure_indices(), (std::vector<int>{2}));
  EXPECT_EQ(schema.field(3).role, FieldRole::kKey);
  EXPECT_EQ(table->GetValue(1, 0), Value::String("Jane O'Neal"));
  EXPECT_EQ(table->GetValue(0, 2), Value::Int64(654));
}

TEST(TableIoTest, InfersTypesAndDefaultRoles) {
  // No annotations: first string column becomes the entity; numerics
  // become measures.
  auto table = TableIo::FromCsv(
      "name,city,amount,score\n"
      "alice,SF,12,1.5\n"
      "bob,LA,7,2.25\n");
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  EXPECT_EQ(schema.field(0).role, FieldRole::kEntity);
  EXPECT_EQ(schema.field(1).role, FieldRole::kDimension);
  EXPECT_EQ(schema.field(2).type, DataType::kInt64);
  EXPECT_EQ(schema.field(2).role, FieldRole::kMeasure);
  EXPECT_EQ(schema.field(3).type, DataType::kDouble);
  EXPECT_EQ(table->GetValue(1, 3), Value::Double(2.25));
}

TEST(TableIoTest, QuotedFieldsWithSeparatorsAndQuotes) {
  auto table = TableIo::FromCsv(
      "name:STRING:ENTITY,notes:STRING:DIM,v:INT64:MEASURE\n"
      "\"Smith, John\",\"said \"\"hi\"\"\",3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->GetValue(0, 0), Value::String("Smith, John"));
  EXPECT_EQ(table->GetValue(0, 1), Value::String("said \"hi\""));
}

TEST(TableIoTest, CrlfAndBlankLinesTolerated) {
  auto table = TableIo::FromCsv(
      "e:STRING:ENTITY,v:INT64:MEASURE\r\n\r\na,1\r\nb,2\r\n\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(TableIoTest, ErrorsAreDescriptive) {
  EXPECT_TRUE(TableIo::FromCsv("").status().IsInvalidArgument());
  EXPECT_TRUE(TableIo::FromCsv("e:STRING:ENTITY,v:INT64:MEASURE\n")
                  .status()
                  .IsInvalidArgument());  // no data rows
  EXPECT_TRUE(TableIo::FromCsv(
                  "e:STRING:ENTITY,v:INT64:MEASURE\na,1\nb\n")
                  .status()
                  .IsInvalidArgument());  // ragged row
  EXPECT_TRUE(TableIo::FromCsv(
                  "e:STRING:ENTITY,v:INT64:MEASURE\na,xyz\n")
                  .status()
                  .IsTypeError());  // bad int
  EXPECT_TRUE(TableIo::FromCsv(
                  "e:WIDGET:ENTITY,v:INT64:MEASURE\na,1\n")
                  .status()
                  .IsInvalidArgument());  // unknown type
  EXPECT_TRUE(TableIo::FromCsv(
                  "e:STRING:BOSS,v:INT64:MEASURE\na,1\n")
                  .status()
                  .IsInvalidArgument());  // unknown role
  EXPECT_TRUE(TableIo::FromCsv("e:STRING:ENTITY,v:INT64:MEASURE\n\"a,1\n")
                  .status()
                  .IsInvalidArgument());  // unterminated quote
  // Two entity columns.
  EXPECT_TRUE(TableIo::FromCsv(
                  "a:STRING:ENTITY,b:STRING:ENTITY,v:INT64:MEASURE\n"
                  "x,y,1\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(TableIoTest, RoundTripsGeneratedRelation) {
  TrafficGenOptions options;
  options.num_customers = 25;
  options.months_per_customer = 3;
  auto original = TrafficGen::Generate(options);
  ASSERT_TRUE(original.ok());
  std::string csv = TableIo::ToCsv(*original);
  auto parsed = TableIo::FromCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_rows(), original->num_rows());
  EXPECT_EQ(parsed->schema(), original->schema());
  for (size_t r = 0; r < original->num_rows(); ++r) {
    for (int c = 0; c < original->num_columns(); ++c) {
      ASSERT_EQ(parsed->GetValue(static_cast<RowId>(r), c),
                original->GetValue(static_cast<RowId>(r), c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(TableIoTest, FileRoundTrip) {
  auto table = TrafficGen::PaperExample();
  ASSERT_TRUE(table.ok());
  std::string path = ::testing::TempDir() + "/paleo_io_test.csv";
  ASSERT_TRUE(TableIo::WriteCsvFile(*table, path).ok());
  auto loaded = TableIo::ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), table->num_rows());
  EXPECT_EQ(loaded->schema(), table->schema());
  std::remove(path.c_str());
}

TEST(TableIoTest, ReadMissingFileIsIoError) {
  EXPECT_TRUE(
      TableIo::ReadCsvFile("/nonexistent/paleo.csv").status().IsIoError());
}

}  // namespace
}  // namespace paleo
