// Work-stealing ThreadPool tests: futures, priority ordering,
// cancellation-skip semantics, nested fork-join via WaitHelping, and
// destruction draining.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"

namespace paleo {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, NumThreadsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
  auto f = pool.Submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DefaultNumThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, VoidTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, StatusResultsTravelThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return Status::OK(); });
  auto bad = pool.Submit(
      [] { return Status::InvalidArgument("bad input"); });
  EXPECT_TRUE(ok.get().ok());
  Status s = bad.get();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
}

TEST(ThreadPoolTest, HigherPriorityLeavesGlobalQueueFirst) {
  // One worker, blocked while we stack the global queue; the
  // unblocked worker must then drain it priority-first.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.Submit([open] { open.wait(); });

  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  auto record = [&order_mutex, &order](int tag) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(tag);
  };
  futures.push_back(pool.Submit([&record] { record(0); }, /*priority=*/0));
  futures.push_back(pool.Submit([&record] { record(1); }, /*priority=*/0));
  futures.push_back(pool.Submit([&record] { record(10); }, /*priority=*/1));
  futures.push_back(pool.Submit([&record] { record(11); }, /*priority=*/1));
  futures.push_back(pool.Submit([&record] { record(2); }, /*priority=*/0));

  gate.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
  // Priority 1 first (in submission order), then priority 0 FIFO.
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 11);
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 1);
  EXPECT_EQ(order[4], 2);
}

TEST(ThreadPoolTest, CancelledTaskIsSkippedWithDefaultResult) {
  ThreadPool pool(1);
  CancellationToken cancel;
  cancel.Cancel();
  std::atomic<bool> ran{false};
  auto f = pool.Submit(
      [&ran] {
        ran.store(true);
        return 7;
      },
      /*priority=*/0, &cancel);
  EXPECT_EQ(f.get(), 0);  // value-initialized, not 7
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, CancellationTripsQueuedButNotStartedTasks) {
  ThreadPool pool(1);
  CancellationToken cancel;
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.Submit([open] { open.wait(); });

  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit(
        [&ran] {
          ran.fetch_add(1);
          return 1;
        },
        /*priority=*/0, &cancel));
  }
  cancel.Cancel();  // while all 16 still sit in the queue
  gate.set_value();
  blocker.get();
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 0);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, WaitHelpingJoinsNestedForkJoin) {
  // Every task fans out subtasks into the same pool and joins them
  // with WaitHelping. With a single worker this deadlocks unless the
  // waiter lends itself to the pool.
  ThreadPool pool(1);
  auto outer = pool.Submit([&pool] {
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back(pool.Submit([i] { return i; }, /*priority=*/1));
    }
    int sum = 0;
    for (auto& f : inner) {
      pool.WaitHelping(f);
      sum += f.get();
    }
    return sum;
  });
  pool.WaitHelping(outer);
  EXPECT_EQ(outer.get(), 28);
}

TEST(ThreadPoolTest, DeeplyNestedForkJoinOnSmallPool) {
  ThreadPool pool(2);
  // Recursive parallel sum of 1..256 via divide and conquer.
  std::function<int64_t(int, int)> sum = [&](int lo, int hi) -> int64_t {
    if (hi - lo <= 8) {
      int64_t s = 0;
      for (int i = lo; i < hi; ++i) s += i;
      return s;
    }
    int mid = lo + (hi - lo) / 2;
    auto left = pool.Submit([&sum, lo, mid] { return sum(lo, mid); },
                            /*priority=*/1);
    int64_t right = sum(mid, hi);
    pool.WaitHelping(left);
    return left.get() + right;
  };
  auto root = pool.Submit([&sum] { return sum(1, 257); });
  pool.WaitHelping(root);
  EXPECT_EQ(root.get(), 256 * 257 / 2);
}

TEST(ThreadPoolTest, ManyProducersManyTasks) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&pool, &total] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 64; ++i) {
        futures.push_back(
            pool.Submit([&total, i] { total.fetch_add(i); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total.load(), 8 * (63 * 64 / 2));
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&ran] {
        ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }));
    }
    // Pool destroyed with most tasks still queued.
  }
  // Every future must be fulfilled — destruction never abandons tasks.
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, RunPendingTaskFromNonWorkerThread) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<bool> started{false};
  auto blocker = pool.Submit([&started, open] {
    started.store(true);
    open.wait();
  });
  // Ensure the worker (not this thread, below) owns the blocker.
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::atomic<bool> ran{false};
  auto f = pool.Submit([&ran] { ran.store(true); });
  // The single worker is blocked; this thread picks up the task.
  while (!pool.RunPendingTask()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(ran.load());
  f.get();
  gate.set_value();
  blocker.get();
}

TEST(ThreadPoolTest, QueueDepthReflectsBacklog) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.Submit([open] { open.wait(); });
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  EXPECT_GE(pool.QueueDepth(), 1u);
  gate.set_value();
  blocker.get();
  for (auto& f : futures) f.get();
}

}  // namespace
}  // namespace paleo
