// Differential tests for threshold-pruned validation and shared
// lattice aggregation: randomized chunked tables x candidate queries
// asserting that the pruned executor path (ExecContext::threshold) and
// the shared-partials path (ExecContext::share_aggregates) accept and
// reject EXACTLY the same candidates as the unpruned full scan —
// across the scalar, vectorized, and morsel-parallel paths — plus unit
// tests of the ThresholdMonitor's deactivation rules, budget-interrupt
// precedence over refutation, concurrent shared-cache stress, and
// full-pipeline equivalence with the knobs on and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_points.h"
#include "common/random.h"
#include "common/run_budget.h"
#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/atom_cache.h"
#include "engine/executor.h"
#include "engine/threshold_monitor.h"
#include "paleo/paleo.h"
#include "workload/workload.h"

namespace paleo {
namespace {

// ---- Randomized workload generation -------------------------------------

Schema DiffSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"s1", DataType::kString, FieldRole::kDimension},
      {"s2", DataType::kString, FieldRole::kDimension},
      {"d1", DataType::kInt64, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
      {"w", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

const char* kStates[] = {"CA", "NY", "TX", "WA"};

/// Random MULTI-CHUNK table: pruning only engages past one chunk, so
/// the layout straddles several small chunks (and bitmap words).
Table RandomChunkedTable(Rng& rng, size_t num_rows) {
  Table t(DiffSchema());
  const int num_entities = static_cast<int>(rng.UniformInt(3, 40));
  for (size_t r = 0; r < num_rows; ++r) {
    std::string e = "e" + std::to_string(rng.UniformInt(0, num_entities - 1));
    std::string s1 = kStates[rng.Uniform(4)];
    std::string s2 = "g" + std::to_string(rng.Uniform(8));
    EXPECT_TRUE(t.AppendRow({Value::String(e), Value::String(s1),
                             Value::String(s2),
                             Value::Int64(rng.UniformInt(0, 10)),
                             Value::Int64(rng.UniformInt(-100, 100)),
                             Value::Double(rng.UniformDouble(0.0, 100.0))})
                    .ok());
  }
  const size_t chunk_sizes[] = {64, 128, 256};
  t.SetChunkRows(chunk_sizes[rng.Uniform(3)]);
  return t;
}

/// Random grouped candidate: 0-3 predicate atoms (sometimes one no row
/// matches), random ranking expression, aggregate, order, and k.
TopKQuery RandomQuery(Rng& rng) {
  TopKQuery q;
  std::vector<AtomicPredicate> atoms;
  const int num_atoms = static_cast<int>(rng.Uniform(4));
  bool used[3] = {false, false, false};
  for (int i = 0; i < num_atoms; ++i) {
    const int pick = static_cast<int>(rng.Uniform(3));
    if (used[pick]) continue;
    used[pick] = true;
    switch (pick) {
      case 0:
        atoms.emplace_back(1, rng.Uniform(8) == 0
                                  ? Value::String("ZZ")
                                  : Value::String(kStates[rng.Uniform(4)]));
        break;
      case 1:
        atoms.emplace_back(
            2, Value::String("g" + std::to_string(rng.Uniform(8))));
        break;
      case 2:
        if (rng.Uniform(2) == 0) {
          atoms.emplace_back(3, Value::Int64(rng.UniformInt(0, 10)));
        } else {
          const int64_t lo = rng.UniformInt(0, 8);
          atoms.push_back(AtomicPredicate::Range(
              3, Value::Int64(lo), Value::Int64(rng.UniformInt(lo, 10))));
        }
        break;
    }
  }
  q.predicate = Predicate(std::move(atoms));
  switch (rng.Uniform(4)) {
    case 0: q.expr = RankExpr::Column(4); break;
    case 1: q.expr = RankExpr::Column(5); break;
    case 2: q.expr = RankExpr::Add(4, 5); break;
    default: q.expr = RankExpr::Mul(4, 5); break;
  }
  const AggFn aggs[] = {AggFn::kMax, AggFn::kMin, AggFn::kSum,
                        AggFn::kAvg, AggFn::kCount};
  q.agg = aggs[rng.Uniform(5)];
  q.order = rng.Uniform(2) == 0 ? SortOrder::kDesc : SortOrder::kAsc;
  q.k = static_cast<int>(rng.UniformInt(1, 15));
  return q;
}

/// A candidate "near" the truth: same k/order (so the monitor applies)
/// with a perturbed predicate, aggregate, or expression — the
/// population where an unsound refutation would actually flip an
/// accept.
TopKQuery PerturbQuery(Rng& rng, const TopKQuery& truth) {
  TopKQuery q = RandomQuery(rng);
  q.k = truth.k;
  q.order = truth.order;
  if (rng.Uniform(3) == 0) {
    q.predicate = truth.predicate;  // same rows, different criterion
  } else if (rng.Uniform(2) == 0) {
    q.expr = truth.expr;
    q.agg = truth.agg;  // same criterion, different rows
  }
  return q;
}

// ---- ThresholdMonitor unit tests ----------------------------------------

TopKList ListOf(std::vector<std::pair<std::string, double>> rows) {
  TopKList l;
  for (auto& [e, v] : rows) l.Append(std::move(e), v);
  return l;
}

TEST(ThresholdMonitorTest, DeactivatesOnUnusableInput) {
  Rng rng(1);
  Table t = RandomChunkedTable(rng, 400);
  // Empty input: nothing to refute against.
  EXPECT_FALSE(ThresholdMonitor(t, TopKList{}, SortOrder::kDesc, 1e-9)
                   .active());
  // Duplicate entities: no grouped query can produce them.
  EXPECT_FALSE(ThresholdMonitor(t, ListOf({{"e0", 5.0}, {"e0", 3.0}}),
                                SortOrder::kDesc, 1e-9)
                   .active());
  // Values sorted against the claimed order.
  EXPECT_FALSE(ThresholdMonitor(t, ListOf({{"e0", 1.0}, {"e1", 9.0}}),
                                SortOrder::kDesc, 1e-9)
                   .active());
  // An entity absent from the table's dictionary: the list can never
  // be reproduced, but refutation targets cannot be resolved either.
  EXPECT_FALSE(ThresholdMonitor(t, ListOf({{"nosuch", 5.0}, {"e0", 3.0}}),
                                SortOrder::kDesc, 1e-9)
                   .active());
}

TEST(ThresholdMonitorTest, ResolvesTargetsAndScopesApplicability) {
  Rng rng(2);
  Table t = RandomChunkedTable(rng, 400);
  const TopKList input = ListOf({{"e0", 9.0}, {"e1", 4.0}, {"e2", 1.5}});
  ThresholdMonitor m(t, input, SortOrder::kDesc, 1e-9);
  ASSERT_TRUE(m.active());
  EXPECT_EQ(m.k(), 3u);
  EXPECT_DOUBLE_EQ(m.worst_value(), 1.5);
  EXPECT_GT(m.slack(), 1e-9) << "slack must be wider than the eps";

  TopKQuery q;
  q.agg = AggFn::kMax;
  q.expr = RankExpr::Column(4);
  q.k = 3;
  q.order = SortOrder::kDesc;
  EXPECT_TRUE(m.AppliesTo(q));
  q.k = 4;
  EXPECT_FALSE(m.AppliesTo(q)) << "k mismatch";
  q.k = 3;
  q.order = SortOrder::kAsc;
  EXPECT_FALSE(m.AppliesTo(q)) << "order mismatch";
  q.order = SortOrder::kDesc;
  q.agg = AggFn::kNone;
  EXPECT_FALSE(m.AppliesTo(q)) << "ungrouped queries have no groups";
}

// ---- Differential accept/reject equivalence -----------------------------

/// The soundness + equivalence contract for one (table, input,
/// candidate) triple on one execution path: the pruned run either
/// reproduces the unpruned result byte-identically or refutes — and it
/// refutes ONLY candidates the unpruned run rejects.
void ExpectPrunedEquivalent(Executor& ex, const Table& t,
                            const TopKQuery& candidate,
                            const TopKList& input,
                            const ThresholdMonitor& monitor,
                            const ExecContext& base_ctx, int workload) {
  auto unpruned = ex.Execute(t, candidate, base_ctx);
  ASSERT_TRUE(unpruned.ok()) << "workload " << workload;
  const bool accept_unpruned = unpruned->InstanceEquals(input);

  ExecContext pruned_ctx = base_ctx;
  pruned_ctx.threshold = &monitor;
  auto pruned = ex.Execute(t, candidate, pruned_ctx);
  if (pruned.ok()) {
    EXPECT_TRUE(*pruned == *unpruned)
        << "workload " << workload
        << ": a non-refuted pruned run must be byte-identical";
  } else {
    ASSERT_TRUE(pruned.status().IsQueryRefuted())
        << "workload " << workload << ": " << pruned.status().ToString();
    EXPECT_FALSE(accept_unpruned)
        << "workload " << workload
        << ": refuted a candidate the full execution accepts (UNSOUND)";
  }
  const bool accept_pruned = pruned.ok() && pruned->InstanceEquals(input);
  EXPECT_EQ(accept_unpruned, accept_pruned) << "workload " << workload;
}

TEST(ThresholdValidationTest, DifferentialPrunedVsUnprunedAcceptSets) {
  Rng rng(20260809);
  ThreadPool pool(4);
  Executor scalar;
  scalar.SetVectorized(false);
  Executor vec;  // vectorized by default
  int workloads = 0;
  int refuted_somewhere = 0;
  for (int ti = 0; ti < 70; ++ti) {
    const size_t sizes[] = {200, 500, 1000, 2048, 3000};
    Table t = RandomChunkedTable(rng, sizes[rng.Uniform(5)]);
    // The input list L to validate against: a random truth query's
    // genuine result over the table.
    const TopKQuery truth = RandomQuery(rng);
    auto input = vec.Execute(t, truth, ExecContext{});
    ASSERT_TRUE(input.ok());
    if (input->empty()) continue;
    ThresholdMonitor monitor(t, *input, truth.order, 1e-9);

    const ExecContext scalar_ctx{};
    const ExecContext vec_ctx{};
    const ExecContext par_ctx{.pool = &pool, .scan_threads = 4};
    for (int ci = 0; ci < 8; ++ci) {
      // First candidate is the truth itself: it must NEVER be refuted
      // on any path (soundness), the rest perturb around it.
      const TopKQuery cand = ci == 0 ? truth : PerturbQuery(rng, truth);
      ExpectPrunedEquivalent(scalar, t, cand, *input, monitor, scalar_ctx,
                             workloads);
      ExpectPrunedEquivalent(vec, t, cand, *input, monitor, vec_ctx,
                             workloads);
      ExpectPrunedEquivalent(vec, t, cand, *input, monitor, par_ctx,
                             workloads);
      ExecContext probe_ctx = vec_ctx;
      probe_ctx.threshold = &monitor;
      if (!vec.Execute(t, cand, probe_ctx).ok()) ++refuted_somewhere;
      ++workloads;
    }
  }
  // The acceptance bar: at least 500 distinct randomized workloads,
  // and the pruner actually fired (the suite is vacuous otherwise).
  EXPECT_GE(workloads, 500);
  EXPECT_GT(refuted_somewhere, 0) << "no workload ever refuted";
}

TEST(ThresholdValidationTest, SharedPartialsAreByteIdentical) {
  Rng rng(7042);
  ThreadPool pool(4);
  Executor scalar;
  scalar.SetVectorized(false);
  Executor vec;
  int served_runs = 0;
  for (int ti = 0; ti < 20; ++ti) {
    Table t = RandomChunkedTable(rng, 1500);
    AtomSelectionCache cache(static_cast<size_t>(8) << 20);
    const TopKQuery base_q = RandomQuery(rng);
    for (int ci = 0; ci < 4; ++ci) {
      // Same predicate + expression with varying aggregates: the
      // population the partials tier serves (one cached entry answers
      // every aggregate over the same conjunction/expression pair).
      TopKQuery q = base_q;
      const AggFn aggs[] = {AggFn::kMax, AggFn::kMin, AggFn::kSum,
                            AggFn::kAvg};
      q.agg = aggs[ci % 4];
      auto ref = scalar.Execute(t, q, ExecContext{});
      ASSERT_TRUE(ref.ok());
      const ExecContext shared_ctx{.cache = &cache,
                                   .share_aggregates = true};
      const ExecContext shared_par_ctx{.cache = &cache, .pool = &pool,
                                       .scan_threads = 4,
                                       .share_aggregates = true};
      auto cold = vec.Execute(t, q, shared_ctx);
      auto warm = vec.Execute(t, q, shared_ctx);
      auto par = vec.Execute(t, q, shared_par_ctx);
      ASSERT_TRUE(cold.ok());
      ASSERT_TRUE(warm.ok());
      ASSERT_TRUE(par.ok());
      EXPECT_TRUE(*ref == *cold);
      EXPECT_TRUE(*ref == *warm);
      EXPECT_TRUE(*ref == *par);
    }
    if (cache.stats().conjunction_hits > 0) ++served_runs;
  }
  EXPECT_GT(served_runs, 0) << "the partials tier never served a chunk";
}

TEST(ThresholdValidationTest, ServedChunksDropFromRowsScanned) {
  Rng rng(33);
  Table t = RandomChunkedTable(rng, 2048);
  AtomSelectionCache cache(static_cast<size_t>(8) << 20);
  TopKQuery q = RandomQuery(rng);
  q.predicate = Predicate{};  // full-table group-by: no zone skipping
  Executor vec;
  const ExecContext ctx{.cache = &cache, .share_aggregates = true};
  ASSERT_TRUE(vec.Execute(t, q, ctx).ok());
  const int64_t after_cold = vec.stats().rows_scanned.load();
  ASSERT_TRUE(vec.Execute(t, q, ctx).ok());
  const int64_t after_warm = vec.stats().rows_scanned.load();
  EXPECT_EQ(after_cold, 2048);
  EXPECT_EQ(after_warm, after_cold)
      << "a fully served execution must scan zero rows";
}

// ---- Budget interruption vs refutation ----------------------------------

TEST(ThresholdValidationTest, CancellationOutranksRefutation) {
  Rng rng(91);
  Table t = RandomChunkedTable(rng, 2048);
  TopKQuery truth = RandomQuery(rng);
  Executor vec;
  auto input = vec.Execute(t, truth, ExecContext{});
  ASSERT_TRUE(input.ok());
  ASSERT_FALSE(input->empty());
  // A list no candidate can reproduce: inflate the values far past any
  // zone-map bound, so every grouped execution refutes quickly.
  TopKList impossible;
  for (const TopKEntry& e : input->entries()) {
    impossible.Append(e.entity, e.value + 1e12);
  }
  ThresholdMonitor monitor(t, impossible, truth.order, 1e-9);
  ASSERT_TRUE(monitor.active());
  ASSERT_TRUE(monitor.AppliesTo(truth));
  auto refuted =
      vec.Execute(t, truth, ExecContext{.threshold = &monitor});
  ASSERT_FALSE(refuted.ok());
  EXPECT_TRUE(refuted.status().IsQueryRefuted());

  // The same execution under a tripped budget winds down as Cancelled:
  // budget interruption outranks refutation (a refuted verdict from an
  // interrupted scan could depend on which morsels happened to finish).
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  auto cancelled = vec.Execute(
      t, truth, ExecContext{.budget = &budget, .threshold = &monitor});
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled());
  EXPECT_FALSE(cancelled.status().IsQueryRefuted());
}

TEST(ThresholdValidationTest, InjectedMidScanInterruptNeverMisaccepts) {
  FaultPoints::DisarmAll();
  Rng rng(92);
  Table t = RandomChunkedTable(rng, 2048);
  TopKQuery truth = RandomQuery(rng);
  Executor vec;
  auto input = vec.Execute(t, truth, ExecContext{});
  ASSERT_TRUE(input.ok());
  ASSERT_FALSE(input->empty());
  ThresholdMonitor monitor(t, *input, truth.order, 1e-9);
  // Inject a simulated mid-scan budget interruption into every second
  // execution: whatever the interleaving with chunk refutation, the
  // outcome is Cancelled, QueryRefuted, or a byte-identical result —
  // never a wrong accept.
  FaultSpec spec;
  spec.action = FaultAction::kStatusError;
  spec.code = StatusCode::kCancelled;
  spec.probability = 0.5;
  spec.seed = 17;
  FaultPoints::Arm("executor.execute.scan", spec);
  for (int i = 0; i < 32; ++i) {
    const TopKQuery cand = i == 0 ? truth : PerturbQuery(rng, truth);
    auto pruned =
        vec.Execute(t, cand, ExecContext{.threshold = &monitor});
    if (!pruned.ok()) {
      EXPECT_TRUE(pruned.status().IsCancelled() ||
                  pruned.status().IsQueryRefuted())
          << pruned.status().ToString();
      continue;
    }
    FaultPoints::DisarmAll();
    auto ref = vec.Execute(t, cand, ExecContext{});
    FaultPoints::Arm("executor.execute.scan", spec);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(*pruned == *ref);
  }
  FaultPoints::DisarmAll();
}

// ---- Concurrent shared-cache stress -------------------------------------

TEST(ThresholdValidationTest, ConcurrentSharingAndPruningStaySound) {
  Rng rng(4321);
  Table t = RandomChunkedTable(rng, 3000);
  const TopKQuery truth = RandomQuery(rng);
  Executor vec;
  auto input = vec.Execute(t, truth, ExecContext{});
  ASSERT_TRUE(input.ok());
  if (input->empty()) GTEST_SKIP() << "degenerate draw";
  ThresholdMonitor monitor(t, *input, truth.order, 1e-9);

  std::vector<TopKQuery> queries{truth};
  std::vector<TopKList> refs{*input};
  for (int i = 0; i < 5; ++i) {
    queries.push_back(PerturbQuery(rng, truth));
    auto ref = vec.Execute(t, queries.back(), ExecContext{});
    ASSERT_TRUE(ref.ok());
    refs.push_back(*std::move(ref));
  }
  // Budget small enough to force evictions across both tiers mid-run.
  AtomSelectionCache cache(6 * SelectionBitmap(3000).MemoryUsage());
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&]() {
      for (int iter = 0; iter < 40; ++iter) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto r = vec.Execute(t, queries[qi],
                               ExecContext{.cache = &cache,
                                           .threshold = &monitor,
                                           .share_aggregates = true});
          const bool accept_ref = refs[qi].InstanceEquals(*input);
          if (r.ok()) {
            if (!(*r == refs[qi])) {
              violations.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (!r.status().IsQueryRefuted() || accept_ref) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_LE(cache.stats().resident_bytes, cache.byte_budget());
}

// ---- Full-pipeline equivalence ------------------------------------------

TEST(ThresholdValidationTest, PipelineValidSetIdenticalPruningOnOff) {
  TpchGenOptions gen;
  gen.scale_factor = 0.003;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  // Small chunks so both pruning and sharing actually engage.
  table->SetChunkRows(2048);

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA, QueryFamily::kSumA,
                 QueryFamily::kAvgA};
  wl.predicate_sizes = {1, 2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());

  auto run = [&](const WorkloadQuery& wq, bool pruning, bool sharing,
                 bool lattice) -> ReverseEngineerReport {
    PaleoOptions options;
    options.use_dimension_index = false;  // force scanned validation
    options.threshold_pruning = pruning;
    options.share_aggregates = sharing;
    options.lattice_aware_order = lattice;
    options.stop_at_first_valid = false;  // compare the FULL valid set
    Paleo paleo(&*table, options);
    auto report = paleo.Run(wq.list);
    EXPECT_TRUE(report.ok());
    return *std::move(report);
  };
  auto hashes = [](const ReverseEngineerReport& r) {
    std::vector<uint64_t> h;
    for (const ValidQuery& vq : r.valid) h.push_back(vq.query.Hash());
    std::sort(h.begin(), h.end());
    return h;
  };

  int64_t total_refuted = 0;
  for (const WorkloadQuery& wq : *workload) {
    const ReverseEngineerReport off = run(wq, false, false, false);
    const ReverseEngineerReport on = run(wq, true, true, false);
    ASSERT_FALSE(off.valid.empty()) << wq.name;
    EXPECT_EQ(hashes(off), hashes(on)) << wq.name;
    // Refuted executions count as executions: the schedule — and with
    // it every execution and skip count — is identical knobs on/off.
    EXPECT_EQ(off.executed_queries, on.executed_queries) << wq.name;
    EXPECT_EQ(off.skip_events, on.skip_events) << wq.name;
    EXPECT_EQ(off.executions_aborted_early, 0) << wq.name;
    EXPECT_GE(on.rows_saved, 0) << wq.name;
    total_refuted += on.executions_aborted_early;

    // Lattice-aware ordering permutes suitability TIES only; the full
    // valid set is order-independent.
    const ReverseEngineerReport lat = run(wq, true, true, true);
    EXPECT_EQ(hashes(off), hashes(lat)) << wq.name;
  }
  EXPECT_GT(total_refuted, 0)
      << "pruning never fired across the whole workload";
}

TEST(ThresholdValidationTest, PipelineParallelValidationIdentical) {
  TpchGenOptions gen;
  gen.scale_factor = 0.002;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  table->SetChunkRows(2048);

  WorkloadOptions wl;
  wl.families = {QueryFamily::kMaxA};
  wl.predicate_sizes = {2};
  wl.ks = {10};
  wl.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, wl);
  ASSERT_TRUE(workload.ok());
  ASSERT_FALSE(workload->empty());
  const TopKList& input = (*workload)[0].list;

  PaleoOptions options;
  options.use_dimension_index = false;
  auto run = [&](int num_threads, ThreadPool* pool) {
    PaleoOptions o = options;
    o.num_threads = num_threads;
    Paleo paleo(&*table, o);
    auto report = paleo.RunConcurrent(input, nullptr, pool);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report->found());
    return report->valid[0].query.Hash();
  };
  const uint64_t seq = run(1, nullptr);
  ThreadPool pool(4);
  const uint64_t par = run(4, &pool);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace paleo
