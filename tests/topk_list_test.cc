// Tests for TopKList comparison semantics.

#include <gtest/gtest.h>

#include "engine/topk_list.h"

namespace paleo {
namespace {

TopKList MakeList(std::initializer_list<TopKEntry> entries) {
  return TopKList(std::vector<TopKEntry>(entries));
}

TEST(ValuesCloseTest, RelativeTolerance) {
  EXPECT_TRUE(ValuesClose(100.0, 100.0));
  EXPECT_TRUE(ValuesClose(100.0, 100.0 + 1e-8, 1e-9));
  EXPECT_FALSE(ValuesClose(100.0, 100.1, 1e-9));
  EXPECT_TRUE(ValuesClose(0.0, 1e-12));
  EXPECT_FALSE(ValuesClose(0.0, 0.1));
}

TEST(TopKListTest, BasicAccessors) {
  TopKList l = MakeList({{"a", 3.0}, {"b", 2.0}, {"a", 1.0}});
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.Entities(), (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(l.DistinctEntities(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(l.Values(), (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(TopKListTest, InstanceEqualsExactMatch) {
  TopKList a = MakeList({{"x", 5.0}, {"y", 4.0}});
  TopKList b = MakeList({{"x", 5.0}, {"y", 4.0}});
  EXPECT_TRUE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsRejectsDifferentLength) {
  TopKList a = MakeList({{"x", 5.0}});
  TopKList b = MakeList({{"x", 5.0}, {"y", 4.0}});
  EXPECT_FALSE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsRejectsDifferentOrder) {
  TopKList a = MakeList({{"x", 5.0}, {"y", 4.0}});
  TopKList b = MakeList({{"y", 4.0}, {"x", 5.0}});
  EXPECT_FALSE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsRejectsDifferentValues) {
  TopKList a = MakeList({{"x", 5.0}, {"y", 4.0}});
  TopKList b = MakeList({{"x", 5.0}, {"y", 4.5}});
  EXPECT_FALSE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsAllowsTiePermutation) {
  // x and y are tied at 5.0 — their relative order is not significant.
  TopKList a = MakeList({{"x", 5.0}, {"y", 5.0}, {"z", 3.0}});
  TopKList b = MakeList({{"y", 5.0}, {"x", 5.0}, {"z", 3.0}});
  EXPECT_TRUE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsRejectsWrongEntityInTieGroup) {
  TopKList a = MakeList({{"x", 5.0}, {"y", 5.0}});
  TopKList b = MakeList({{"x", 5.0}, {"q", 5.0}});
  EXPECT_FALSE(a.InstanceEquals(b));
}

TEST(TopKListTest, InstanceEqualsValueTolerance) {
  TopKList a = MakeList({{"x", 1000.0}});
  TopKList b = MakeList({{"x", 1000.0 * (1 + 1e-12)}});
  EXPECT_TRUE(a.InstanceEquals(b, 1e-9));
  EXPECT_FALSE(a.InstanceEquals(b, 1e-15));
}

TEST(TopKListTest, EmptyListsAreEqual) {
  EXPECT_TRUE(TopKList().InstanceEquals(TopKList()));
}

TEST(TopKListTest, EntityJaccard) {
  TopKList a = MakeList({{"x", 1}, {"y", 2}, {"z", 3}});
  TopKList b = MakeList({{"y", 9}, {"z", 8}, {"w", 7}});
  EXPECT_DOUBLE_EQ(a.EntityJaccard(b), 0.5);  // {y,z} / {x,y,z,w}
  EXPECT_DOUBLE_EQ(a.EntityJaccard(a), 1.0);
  EXPECT_DOUBLE_EQ(TopKList().EntityJaccard(TopKList()), 1.0);
  EXPECT_DOUBLE_EQ(a.EntityJaccard(TopKList()), 0.0);
}

TEST(TopKListTest, ValueJaccard) {
  TopKList a = MakeList({{"x", 1.0}, {"y", 2.0}});
  TopKList b = MakeList({{"p", 2.0}, {"q", 3.0}});
  EXPECT_DOUBLE_EQ(a.ValueJaccard(b), 1.0 / 3.0);  // shared {2.0}
  EXPECT_DOUBLE_EQ(a.ValueJaccard(a), 1.0);
}

TEST(TopKListCsvTest, ParsesPlainRows) {
  auto list = TopKList::FromCsv("Lara Ellis,784\nJane O'Neal,699\n");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ(list->entry(0), TopKEntry("Lara Ellis", 784));
  EXPECT_EQ(list->entry(1), TopKEntry("Jane O'Neal", 699));
}

TEST(TopKListCsvTest, SkipsHeaderAndBlankLines) {
  auto list = TopKList::FromCsv("\nname,total traffic\n\na,1.5\nb,2\n");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ(list->entry(0), TopKEntry("a", 1.5));
}

TEST(TopKListCsvTest, CustomSeparatorAndEmbeddedSeparators) {
  // Entities may contain the separator; the value is the LAST field.
  auto list = TopKList::FromCsv("Smith, John\t42\n", '\t');
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->entry(0), TopKEntry("Smith, John", 42));
  auto embedded = TopKList::FromCsv("a,b,3\n");
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(embedded->entry(0), TopKEntry("a,b", 3));
}

TEST(TopKListCsvTest, RejectsMalformedRows) {
  EXPECT_TRUE(TopKList::FromCsv("justone\n").status().IsInvalidArgument());
  EXPECT_TRUE(
      TopKList::FromCsv("a,1\nb,notanumber\n").status().IsInvalidArgument());
  EXPECT_TRUE(TopKList::FromCsv(",5\n").status().IsInvalidArgument());
}

TEST(TopKListCsvTest, EmptyInputYieldsEmptyList) {
  auto list = TopKList::FromCsv("");
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());
}

TEST(TopKListCsvTest, RoundTrip) {
  TopKList original = MakeList({{"x", 5.5}, {"y", 4.0}, {"z", -1.25}});
  auto parsed = TopKList::FromCsv(original.ToCsv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
  // Tab-separated round trip too.
  auto tsv = TopKList::FromCsv(original.ToCsv('\t'), '\t');
  ASSERT_TRUE(tsv.ok());
  EXPECT_EQ(*tsv, original);
}

TEST(TopKListTest, ToStringShowsRanks) {
  TopKList l = MakeList({{"Lara Ellis", 784}, {"Jane O'Neal", 699}});
  std::string s = l.ToString();
  EXPECT_NE(s.find("1. Lara Ellis"), std::string::npos);
  EXPECT_NE(s.find("784"), std::string::npos);
  EXPECT_NE(s.find("2. Jane O'Neal"), std::string::npos);
}

}  // namespace
}  // namespace paleo
