// Unit and property tests for the tuple-set primitives: sorted
// intersection (merge and galloping paths), entity coverage counting,
// and hashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "paleo/tuple_set.h"

namespace paleo {
namespace {

TEST(IntersectSortedTest, BasicCases) {
  EXPECT_EQ(IntersectSorted({}, {}), TupleSet{});
  EXPECT_EQ(IntersectSorted({1, 2, 3}, {}), TupleSet{});
  EXPECT_EQ(IntersectSorted({}, {1, 2, 3}), TupleSet{});
  EXPECT_EQ(IntersectSorted({1, 2, 3}, {2, 3, 4}), (TupleSet{2, 3}));
  EXPECT_EQ(IntersectSorted({1, 3, 5}, {2, 4, 6}), TupleSet{});
  EXPECT_EQ(IntersectSorted({7}, {7}), TupleSet{7});
}

TEST(IntersectSortedTest, IdenticalSets) {
  TupleSet s = {0, 5, 9, 100, 1000};
  EXPECT_EQ(IntersectSorted(s, s), s);
}

TEST(IntersectSortedTest, GallopingPathMatchesMerge) {
  // Strongly skewed sizes route through the galloping implementation;
  // cross-check against a std::set_intersection oracle.
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    TupleSet small, large;
    std::set<RowId> small_set, large_set;
    uint32_t universe = 100000;
    for (int i = 0; i < 25; ++i) {
      small_set.insert(static_cast<RowId>(rng.Uniform(universe)));
    }
    for (int i = 0; i < 5000; ++i) {
      large_set.insert(static_cast<RowId>(rng.Uniform(universe)));
    }
    // Force some overlap.
    int j = 0;
    for (RowId v : small_set) {
      if (++j % 3 == 0) large_set.insert(v);
    }
    small.assign(small_set.begin(), small_set.end());
    large.assign(large_set.begin(), large_set.end());

    TupleSet expected;
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(expected));
    EXPECT_EQ(IntersectSorted(small, large), expected) << "trial " << trial;
    EXPECT_EQ(IntersectSorted(large, small), expected) << "trial " << trial;
  }
}

TEST(IntersectSortedTest, BalancedSizesMatchOracle) {
  Rng rng(34);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<RowId> a_set, b_set;
    for (int i = 0; i < 300; ++i) {
      a_set.insert(static_cast<RowId>(rng.Uniform(1000)));
      b_set.insert(static_cast<RowId>(rng.Uniform(1000)));
    }
    TupleSet a(a_set.begin(), a_set.end());
    TupleSet b(b_set.begin(), b_set.end());
    TupleSet expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(IntersectSorted(a, b), expected);
  }
}

TEST(CountCoveredEntitiesTest, CountsDistinctEntities) {
  // rows 0..5 belong to entities 0,0,1,2,2,2.
  std::vector<uint32_t> row_entity = {0, 0, 1, 2, 2, 2};
  std::vector<uint64_t> scratch;
  EXPECT_EQ(CountCoveredEntities({}, row_entity, 3, &scratch), 0);
  EXPECT_EQ(CountCoveredEntities({0, 1}, row_entity, 3, &scratch), 1);
  EXPECT_EQ(CountCoveredEntities({0, 2}, row_entity, 3, &scratch), 2);
  EXPECT_EQ(CountCoveredEntities({0, 2, 3, 4, 5}, row_entity, 3, &scratch),
            3);
}

TEST(CountCoveredEntitiesTest, ManyEntitiesAcrossWords) {
  // > 64 entities exercises the multi-word bitmap.
  const int m = 150;
  std::vector<uint32_t> row_entity;
  TupleSet all;
  for (int e = 0; e < m; ++e) {
    row_entity.push_back(static_cast<uint32_t>(e));
    all.push_back(static_cast<RowId>(e));
  }
  std::vector<uint64_t> scratch;
  EXPECT_EQ(CountCoveredEntities(all, row_entity, m, &scratch), m);
  TupleSet evens;
  for (int e = 0; e < m; e += 2) evens.push_back(static_cast<RowId>(e));
  EXPECT_EQ(CountCoveredEntities(evens, row_entity, m, &scratch),
            (m + 1) / 2);
  // Scratch is reused across calls without stale bits.
  EXPECT_EQ(CountCoveredEntities({static_cast<RowId>(3)}, row_entity, m,
                                 &scratch),
            1);
}

TEST(HashTupleSetTest, EqualSetsHashEqual) {
  TupleSet a = {1, 5, 9};
  TupleSet b = {1, 5, 9};
  EXPECT_EQ(HashTupleSet(a), HashTupleSet(b));
}

TEST(HashTupleSetTest, DistinguishesContentAndLength) {
  EXPECT_NE(HashTupleSet({1, 5, 9}), HashTupleSet({1, 5}));
  EXPECT_NE(HashTupleSet({1, 5, 9}), HashTupleSet({1, 5, 10}));
  EXPECT_NE(HashTupleSet({}), HashTupleSet({0}));
  // Prefix-sensitivity: {0,1} vs {1,0}-as-sorted would be the same set,
  // but order within the (sorted) representation matters to the hash
  // only through content.
  EXPECT_NE(HashTupleSet({0, 1}), HashTupleSet({1, 2}));
}

TEST(HashTupleSetTest, LowCollisionRateOnRandomSets) {
  Rng rng(35);
  std::set<uint64_t> hashes;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    TupleSet s;
    int len = 1 + static_cast<int>(rng.Uniform(20));
    std::set<RowId> rows;
    for (int j = 0; j < len; ++j) {
      rows.insert(static_cast<RowId>(rng.Uniform(100000)));
    }
    s.assign(rows.begin(), rows.end());
    hashes.insert(HashTupleSet(s));
  }
  // Essentially no collisions expected over 2000 random sets.
  EXPECT_GT(hashes.size(), static_cast<size_t>(n - 3));
}

}  // namespace
}  // namespace paleo
