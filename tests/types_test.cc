// Tests for the type system: DataType, Value, Schema.

#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/value.h"

namespace paleo {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
}

TEST(DataTypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

TEST(ValueTest, TypeTagsAndAccessors) {
  Value i = Value::Int64(42);
  Value d = Value::Double(3.5);
  Value s = Value::String("CA");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_TRUE(i.is_numeric());
  EXPECT_TRUE(d.is_numeric());
  EXPECT_FALSE(s.is_numeric());
  EXPECT_EQ(i.int64(), 42);
  EXPECT_EQ(d.dbl(), 3.5);
  EXPECT_EQ(s.str(), "CA");
  EXPECT_EQ(i.AsDouble(), 42.0);
  EXPECT_EQ(d.AsDouble(), 3.5);
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value::Int64(2), Value::Int64(2));
  EXPECT_NE(Value::Int64(2), Value::Double(2.0));
  EXPECT_NE(Value::String("2"), Value::Int64(2));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
  EXPECT_NE(Value::String("x"), Value::String("y"));
}

TEST(ValueTest, ToStringAndToSql) {
  EXPECT_EQ(Value::Int64(7).ToString(), "7");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::String("CA").ToString(), "CA");
  EXPECT_EQ(Value::Int64(7).ToSql(), "7");
  EXPECT_EQ(Value::String("CA").ToSql(), "'CA'");
  EXPECT_EQ(Value::String("O'Neal").ToSql(), "'O''Neal'");
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Double(1.0), Value::Double(1.5));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-type order is by type tag (int < double < string).
  EXPECT_LT(Value::Int64(100), Value::Double(-5.0));
  EXPECT_LT(Value::Double(100.0), Value::String(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Int64(5).Hash());
  EXPECT_NE(Value::Int64(5).Hash(), Value::Int64(6).Hash());
  EXPECT_NE(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
}

std::vector<Field> BasicFields() {
  return {
      {"name", DataType::kString, FieldRole::kEntity},
      {"state", DataType::kString, FieldRole::kDimension},
      {"year", DataType::kInt64, FieldRole::kDimension},
      {"minutes", DataType::kInt64, FieldRole::kMeasure},
      {"price", DataType::kDouble, FieldRole::kMeasure},
      {"id", DataType::kInt64, FieldRole::kKey},
  };
}

TEST(SchemaTest, MakeValidSchema) {
  auto schema = Schema::Make(BasicFields());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 6);
  EXPECT_EQ(schema->entity_index(), 0);
  EXPECT_EQ(schema->dimension_indices(), (std::vector<int>{1, 2}));
  EXPECT_EQ(schema->measure_indices(), (std::vector<int>{3, 4}));
  EXPECT_EQ(schema->num_measure_columns(), 2);
  EXPECT_EQ(schema->num_textual_columns(), 1);  // state only
}

TEST(SchemaTest, FieldLookup) {
  auto schema = Schema::Make(BasicFields());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->FieldIndex("price"), 4);
  EXPECT_EQ(schema->FieldIndex("nope"), -1);
  auto idx = schema->GetFieldIndex("minutes");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 3);
  EXPECT_TRUE(schema->GetFieldIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto fields = BasicFields();
  fields[1].name = "name";
  EXPECT_TRUE(Schema::Make(fields).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto fields = BasicFields();
  fields[2].name = "";
  EXPECT_TRUE(Schema::Make(fields).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsMissingEntity) {
  auto fields = BasicFields();
  fields[0].role = FieldRole::kDimension;
  EXPECT_TRUE(Schema::Make(fields).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsTwoEntities) {
  auto fields = BasicFields();
  fields[1].role = FieldRole::kEntity;
  EXPECT_TRUE(Schema::Make(fields).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsNonNumericMeasure) {
  auto fields = BasicFields();
  fields.push_back({"bad", DataType::kString, FieldRole::kMeasure});
  EXPECT_TRUE(Schema::Make(fields).status().IsInvalidArgument());
}

TEST(SchemaTest, ToStringMentionsFields) {
  auto schema = Schema::Make(BasicFields());
  ASSERT_TRUE(schema.ok());
  std::string s = schema->ToString();
  EXPECT_NE(s.find("name:STRING/ENTITY"), std::string::npos);
  EXPECT_NE(s.find("price:DOUBLE/MEASURE"), std::string::npos);
}

}  // namespace
}  // namespace paleo
