// Tests for ranked and smart (Algorithm 3) validation.

#include <gtest/gtest.h>

#include "datagen/traffic_gen.h"
#include "paleo/validator.h"

namespace paleo {
namespace {

struct Fixture {
  Table table;
  Schema schema;
  Executor executor;
  TopKList list;
  TopKQuery truth;

  static Fixture Make() {
    auto t = TrafficGen::PaperExample();
    EXPECT_TRUE(t.ok());
    Table table = *std::move(t);
    Schema schema = table.schema();
    TopKQuery truth;
    truth.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                      Value::String("CA"));
    truth.expr = RankExpr::Column(schema.FieldIndex("minutes"));
    truth.agg = AggFn::kMax;
    truth.k = 5;
    Executor executor;
    auto list = executor.Execute(table, truth, ExecContext{});
    EXPECT_TRUE(list.ok());
    return Fixture{std::move(table), std::move(schema), Executor(),
                   *std::move(list), truth};
  }

  CandidateQuery MakeCandidate(const TopKQuery& q, double suitability) {
    CandidateQuery cq;
    cq.query = q;
    cq.suitability = suitability;
    return cq;
  }

  /// A query over the wrong column (no overlap with L's entities
  /// guaranteed not in general, but values differ).
  TopKQuery WrongRanking() const {
    TopKQuery q = truth;
    q.expr = RankExpr::Column(schema.FieldIndex("sms"));
    return q;
  }

  /// A query with an unrelated predicate selecting other states.
  TopKQuery WrongPredicate() const {
    TopKQuery q = truth;
    q.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                  Value::String("NY"));
    return q;
  }
};

TEST(ValidatorTest, AcceptsExactMatchOnly) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);
  EXPECT_TRUE(validator.Accepts(f.list, f.list));
  TopKList shifted = f.list;
  TopKList other;
  for (const TopKEntry& e : f.list.entries()) {
    other.Append(e.entity, e.value + 1.0);
  }
  EXPECT_FALSE(validator.Accepts(other, f.list));
}

TEST(ValidatorTest, PartialMatchModeAcceptsNearMisses) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  options.match_mode = MatchMode::kPartial;
  options.partial_min_entity_jaccard = 0.6;
  options.partial_max_value_distance = 0.2;
  Validator validator(f.table, &f.executor, options);

  // Same entities, values off by 1% -> accepted.
  TopKList close;
  for (const TopKEntry& e : f.list.entries()) {
    close.Append(e.entity, e.value * 1.01);
  }
  EXPECT_TRUE(validator.Accepts(close, f.list));

  // Disjoint entities -> rejected.
  TopKList disjoint;
  for (size_t i = 0; i < f.list.size(); ++i) {
    disjoint.Append("nobody " + std::to_string(i), 100.0);
  }
  EXPECT_FALSE(validator.Accepts(disjoint, f.list));
  // Empty result -> rejected.
  EXPECT_FALSE(validator.Accepts(TopKList(), f.list));
}

TEST(ValidatorTest, RankedValidationFindsFirstValid) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);
  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.WrongRanking(), 0.9),
      f.MakeCandidate(f.truth, 0.8),
      f.MakeCandidate(f.WrongPredicate(), 0.7),
  };
  auto outcome = validator.RankedValidation(candidates, f.list);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->found());
  EXPECT_EQ(outcome->executions, 2);  // wrong ranking, then truth
  EXPECT_TRUE(outcome->valid[0].query == f.truth);
  EXPECT_EQ(outcome->valid[0].executions_at_discovery, 2);
}

TEST(ValidatorTest, RankedValidationExhaustsWithoutMatch) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);
  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.WrongRanking(), 0.9),
      f.MakeCandidate(f.WrongPredicate(), 0.7),
  };
  auto outcome = validator.RankedValidation(candidates, f.list);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->found());
  EXPECT_EQ(outcome->executions, 2);
}

TEST(ValidatorTest, RankedValidationFindsAllWhenRequested) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  options.stop_at_first_valid = false;
  Validator validator(f.table, &f.executor, options);
  TopKQuery with_plan = f.truth;
  with_plan.predicate =
      *f.truth.predicate.And({f.schema.FieldIndex("plan"),
                              Value::String("XL")});
  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.truth, 0.9),
      f.MakeCandidate(f.WrongRanking(), 0.8),
      f.MakeCandidate(with_plan, 0.7),
  };
  auto outcome = validator.RankedValidation(candidates, f.list);
  ASSERT_TRUE(outcome.ok());
  // Both the original and the plan-augmented query are valid (the
  // paper's Section 1 observation).
  EXPECT_EQ(outcome->valid.size(), 2u);
  EXPECT_EQ(outcome->executions, 3);
}

TEST(ValidatorTest, ExecutionBudgetIsHonored) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  options.max_query_executions = 1;
  Validator validator(f.table, &f.executor, options);
  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.WrongRanking(), 0.9),
      f.MakeCandidate(f.truth, 0.8),
  };
  auto ranked = validator.RankedValidation(candidates, f.list);
  ASSERT_TRUE(ranked.ok());
  EXPECT_FALSE(ranked->found());
  EXPECT_EQ(ranked->executions, 1);
  auto smart = validator.SmartValidation(candidates, f.list);
  ASSERT_TRUE(smart.ok());
  EXPECT_LE(smart->executions, 1);
}

TEST(ValidatorTest, SmartValidationSkipsUnrelatedPredicates) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);

  // First candidate: right predicate family, wrong ranking -> its
  // result shares all entities with L (max(sms) over CA customers
  // ranks the same five people), making it the "first match" Qfm.
  // Unrelated-predicate candidates afterwards must be skipped.
  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.WrongRanking(), 0.9),
      f.MakeCandidate(f.WrongPredicate(), 0.8),
      f.MakeCandidate(f.truth, 0.7),
  };
  auto outcome = validator.SmartValidation(candidates, f.list);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->found());
  EXPECT_TRUE(outcome->valid[0].query == f.truth);
  // Executed: WrongRanking (becomes Qfm), truth. WrongPredicate skipped.
  EXPECT_EQ(outcome->executions, 2);
  EXPECT_EQ(outcome->skip_events, 1);
}

TEST(ValidatorTest, SmartValidationRetriesSkippedCandidates) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);

  // The only valid query hides behind a predicate unrelated to the
  // first match; a second pass must recover it.
  TopKQuery xl_truth = f.truth;
  xl_truth.predicate = Predicate::Atom(f.schema.FieldIndex("plan"),
                                       Value::String("XL"));
  Executor ex;
  auto xl_list = ex.Execute(f.table, xl_truth, ExecContext{});
  ASSERT_TRUE(xl_list.ok());

  std::vector<CandidateQuery> candidates = {
      f.MakeCandidate(f.WrongRanking(), 0.9),  // Qfm (same entities as L)
      f.MakeCandidate(xl_truth, 0.8),          // no atoms shared with Qfm
  };
  auto outcome = validator.SmartValidation(candidates, *xl_list);
  ASSERT_TRUE(outcome.ok());
  // Whether pass 1 accepts it depends on Qfm selection; the important
  // property: the valid query is eventually found despite skipping.
  ASSERT_TRUE(outcome->found());
  EXPECT_TRUE(outcome->valid[0].query == xl_truth);
}

TEST(ValidatorTest, ValidateDispatchesOnStrategy) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  options.validation_strategy = ValidationStrategy::kRanked;
  Validator ranked(f.table, &f.executor, options);
  std::vector<CandidateQuery> candidates = {f.MakeCandidate(f.truth, 1.0)};
  auto outcome = ranked.Validate(candidates, f.list);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->found());
  EXPECT_EQ(outcome->passes, 1);
}

TEST(ValidatorTest, EmptyCandidateListIsNotAnError) {
  Fixture f = Fixture::Make();
  PaleoOptions options;
  Validator validator(f.table, &f.executor, options);
  auto ranked = validator.RankedValidation({}, f.list);
  ASSERT_TRUE(ranked.ok());
  EXPECT_FALSE(ranked->found());
  auto smart = validator.SmartValidation({}, f.list);
  ASSERT_TRUE(smart.ok());
  EXPECT_FALSE(smart->found());
}

}  // namespace
}  // namespace paleo
