// Differential tests for the vectorized execution path: randomized
// tables x candidate queries asserting that the scalar row-at-a-time
// path, the vectorized kernel path, and the vectorized+cached path
// produce byte-identical TopKLists (exact operator==, no tolerance) —
// sequentially, under concurrent shared-cache execution, and across
// budget-interrupted scans. Plus unit tests of the AtomSelectionCache's
// LRU eviction, epoch invalidation, and stats.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/run_budget.h"
#include "common/thread_pool.h"
#include "datagen/traffic_gen.h"
#include "engine/atom_cache.h"
#include "engine/executor.h"
#include "engine/selection_bitmap.h"
#include "paleo/paleo.h"

namespace paleo {
namespace {

// ---- Randomized workload generation -------------------------------------

Schema DiffSchema() {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"s1", DataType::kString, FieldRole::kDimension},
      {"s2", DataType::kString, FieldRole::kDimension},
      {"d1", DataType::kInt64, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
      {"w", DataType::kDouble, FieldRole::kMeasure},
  });
  EXPECT_TRUE(schema.ok());
  return *schema;
}

const char* kStates[] = {"CA", "NY", "TX", "WA"};

/// Random table whose sizes straddle the kernels' 2048-row batch
/// boundary and multiple bitmap words.
Table RandomTable(Rng& rng, size_t num_rows) {
  Table t(DiffSchema());
  const int num_entities = static_cast<int>(rng.UniformInt(3, 40));
  for (size_t r = 0; r < num_rows; ++r) {
    std::string e = "e" + std::to_string(rng.UniformInt(0, num_entities - 1));
    std::string s1 = kStates[rng.Uniform(4)];
    std::string s2 = "g" + std::to_string(rng.Uniform(8));
    EXPECT_TRUE(t.AppendRow({Value::String(e), Value::String(s1),
                             Value::String(s2),
                             Value::Int64(rng.UniformInt(0, 10)),
                             Value::Int64(rng.UniformInt(-100, 100)),
                             Value::Double(rng.UniformDouble(0.0, 100.0))})
                    .ok());
  }
  return t;
}

/// Random candidate query: 0-3 predicate atoms (equality over string
/// dims, equality or BETWEEN over the int dim, sometimes a value absent
/// from the table so the atom selects nothing), random ranking
/// expression, aggregate, order, and k.
TopKQuery RandomQuery(Rng& rng) {
  TopKQuery q;
  std::vector<AtomicPredicate> atoms;
  const int num_atoms = static_cast<int>(rng.Uniform(4));
  bool used[3] = {false, false, false};
  for (int i = 0; i < num_atoms; ++i) {
    const int pick = static_cast<int>(rng.Uniform(3));
    if (used[pick]) continue;
    used[pick] = true;
    switch (pick) {
      case 0:
        // Sometimes a state no row carries, exercising kNever.
        atoms.emplace_back(1, rng.Uniform(8) == 0
                                  ? Value::String("ZZ")
                                  : Value::String(kStates[rng.Uniform(4)]));
        break;
      case 1:
        atoms.emplace_back(
            2, Value::String("g" + std::to_string(rng.Uniform(8))));
        break;
      case 2:
        if (rng.Uniform(2) == 0) {
          atoms.emplace_back(3, Value::Int64(rng.UniformInt(0, 10)));
        } else {
          const int64_t lo = rng.UniformInt(0, 8);
          atoms.push_back(AtomicPredicate::Range(
              3, Value::Int64(lo), Value::Int64(rng.UniformInt(lo, 10))));
        }
        break;
    }
  }
  q.predicate = Predicate(std::move(atoms));
  switch (rng.Uniform(4)) {
    case 0: q.expr = RankExpr::Column(4); break;
    case 1: q.expr = RankExpr::Column(5); break;
    case 2: q.expr = RankExpr::Add(4, 5); break;
    default: q.expr = RankExpr::Mul(4, 5); break;
  }
  const AggFn aggs[] = {AggFn::kMax, AggFn::kMin, AggFn::kSum,
                        AggFn::kAvg, AggFn::kCount, AggFn::kNone};
  q.agg = aggs[rng.Uniform(6)];
  q.order = rng.Uniform(2) == 0 ? SortOrder::kDesc : SortOrder::kAsc;
  q.k = static_cast<int>(rng.UniformInt(1, 15));
  return q;
}

// ---- Differential equivalence -------------------------------------------

TEST(VectorizedExecTest, DifferentialScalarVsVectorizedVsCached) {
  Rng rng(20260807);
  Executor scalar;
  scalar.SetVectorized(false);
  Executor vec;  // vectorized by default
  int workloads = 0;
  for (int ti = 0; ti < 40; ++ti) {
    // Sizes straddle word (64) and batch (2048) boundaries.
    const size_t sizes[] = {1, 63, 64, 65, 500, 2047, 2048, 2049, 5000};
    Table t = RandomTable(rng, sizes[rng.Uniform(9)]);
    AtomSelectionCache cache(static_cast<size_t>(4) << 20);
    for (int qi = 0; qi < 3; ++qi) {
      TopKQuery q = RandomQuery(rng);
      auto ref = scalar.Execute(t, q, ExecContext{});
      auto plain = vec.Execute(t, q, ExecContext{});
      auto cached_cold = vec.Execute(t, q, ExecContext{.cache = &cache});
      auto cached_warm = vec.Execute(t, q, ExecContext{.cache = &cache});
      ASSERT_TRUE(ref.ok());
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE(cached_cold.ok());
      ASSERT_TRUE(cached_warm.ok());
      // Exact equality, not InstanceEquals: the contract is
      // byte-identical output.
      EXPECT_TRUE(*ref == *plain) << "workload " << workloads;
      EXPECT_TRUE(*ref == *cached_cold) << "workload " << workloads;
      EXPECT_TRUE(*ref == *cached_warm) << "workload " << workloads;

      const size_t ref_count =
          scalar.CountMatching(t, q.predicate, ExecContext{});
      EXPECT_EQ(ref_count, vec.CountMatching(t, q.predicate, ExecContext{}));
      EXPECT_EQ(ref_count,
                vec.CountMatching(t, q.predicate, ExecContext{.cache = &cache}));
      ++workloads;
    }
    // Warm runs must hit the cache — unless every query's chunks were
    // refuted by zone maps (a never-matching atom skips the chunk
    // before any bitmap is computed), in which case the cache is never
    // consulted at all and stays empty.
    if (cache.stats().misses > 0) {
      EXPECT_GE(cache.stats().hits, 1) << "warm runs must hit the cache";
    }
  }
  // The acceptance bar: at least 100 distinct randomized workloads.
  EXPECT_GE(workloads, 100);
}

TEST(VectorizedExecTest, RowsScannedMatchesScalarAccounting) {
  Rng rng(99);
  Table t = RandomTable(rng, 3000);
  TopKQuery q = RandomQuery(rng);
  Executor scalar;
  scalar.SetVectorized(false);
  Executor vec;
  ASSERT_TRUE(scalar.Execute(t, q, ExecContext{}).ok());
  ASSERT_TRUE(vec.Execute(t, q, ExecContext{}).ok());
  // Both paths charge exactly the consumption pass: n rows per
  // completed full scan.
  EXPECT_EQ(scalar.stats().rows_scanned.load(),
            vec.stats().rows_scanned.load());
  EXPECT_EQ(vec.stats().rows_scanned.load(), 3000);
}

// ---- Budget interruption ------------------------------------------------

TEST(VectorizedExecTest, PreTrippedBudgetCancelsBothPaths) {
  Rng rng(7);
  Table t = RandomTable(rng, 4096);
  TopKQuery q = RandomQuery(rng);
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  for (bool vectorized : {false, true}) {
    Executor ex;
    ex.SetVectorized(vectorized);
    auto result = ex.Execute(t, q, ExecContext{.budget = &budget});
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsCancelled());
  }
}

TEST(VectorizedExecTest, InterruptedScanNeverCachesPartialBitmaps) {
  Rng rng(8);
  Table t = RandomTable(rng, 4096);
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("CA"));
  q.expr = RankExpr::Column(4);
  q.agg = AggFn::kSum;
  q.k = 5;
  AtomSelectionCache cache(static_cast<size_t>(1) << 20);
  Executor vec;
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  auto interrupted = vec.Execute(t, q, ExecContext{.budget = &budget, .cache = &cache});
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(cache.stats().entries, 0u)
      << "a partial bitmap must never be retained";
  // The same cache then serves a complete, correct execution.
  Executor scalar;
  scalar.SetVectorized(false);
  auto ref = scalar.Execute(t, q, ExecContext{});
  auto warm = vec.Execute(t, q, ExecContext{.cache = &cache});
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(*ref == *warm);
}

// ---- Shared-cache concurrency -------------------------------------------

TEST(VectorizedExecTest, ConcurrentSharedCacheMatchesScalarReference) {
  Rng rng(1234);
  Table t = RandomTable(rng, 4000);
  std::vector<TopKQuery> queries;
  std::vector<TopKList> refs;
  Executor scalar;
  scalar.SetVectorized(false);
  for (int i = 0; i < 6; ++i) {
    queries.push_back(RandomQuery(rng));
    auto ref = scalar.Execute(t, queries.back(), ExecContext{});
    ASSERT_TRUE(ref.ok());
    refs.push_back(*std::move(ref));
  }
  Executor vec;
  // Budget small enough to force evictions mid-run, so concurrent
  // readers race against eviction of the bitmaps they hold.
  AtomSelectionCache cache(4 * SelectionBitmap(4000).MemoryUsage());
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&]() {
      for (int iter = 0; iter < 50; ++iter) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto result = vec.Execute(t, queries[qi], ExecContext{.cache = &cache});
          if (!result.ok() || !(*result == refs[qi])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const AtomSelectionCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_LE(stats.resident_bytes, cache.byte_budget());
}

// ---- Cache unit tests ---------------------------------------------------

AtomicPredicate AtomFor(int column, int64_t v) {
  return AtomicPredicate(column, Value::Int64(v));
}

SelectionBitmap BitmapOfRows(size_t n) { return SelectionBitmap(n); }

TEST(AtomSelectionCacheTest, LruEvictionHonorsByteBudget) {
  const size_t bitmap_bytes = BitmapOfRows(1024).MemoryUsage();
  AtomSelectionCache cache(2 * bitmap_bytes);
  cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(1024));
  cache.Insert(1, 0, AtomFor(0, 2), BitmapOfRows(1024));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0);
  // Touch atom 1 so atom 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(1, 0, AtomFor(0, 1)), nullptr);
  cache.Insert(1, 0, AtomFor(0, 3), BitmapOfRows(1024));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().resident_bytes, cache.byte_budget());
  EXPECT_NE(cache.Lookup(1, 0, AtomFor(0, 1)), nullptr);
  EXPECT_NE(cache.Lookup(1, 0, AtomFor(0, 3)), nullptr);
  EXPECT_EQ(cache.Lookup(1, 0, AtomFor(0, 2)), nullptr) << "LRU victim";
}

TEST(AtomSelectionCacheTest, EvictedBitmapSurvivesForInFlightReaders) {
  const size_t bitmap_bytes = BitmapOfRows(512).MemoryUsage();
  AtomSelectionCache cache(bitmap_bytes);
  auto held = cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(512));
  cache.Insert(1, 0, AtomFor(0, 2), BitmapOfRows(512));  // evicts atom 1
  EXPECT_EQ(cache.Lookup(1, 0, AtomFor(0, 1)), nullptr);
  // The shared_ptr handed out earlier still works.
  EXPECT_EQ(held->num_rows(), 512u);
}

TEST(AtomSelectionCacheTest, DistinctEpochsAreDistinctKeys) {
  AtomSelectionCache cache(static_cast<size_t>(1) << 20);
  cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(64));
  EXPECT_NE(cache.Lookup(1, 0, AtomFor(0, 1)), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0, AtomFor(0, 1)), nullptr)
      << "a re-stamped table must never be served the old selection";
}

TEST(AtomSelectionCacheTest, ZeroBudgetDisablesRetention) {
  AtomSelectionCache cache(0);
  auto bm = cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(64));
  ASSERT_NE(bm, nullptr);  // the caller still gets its bitmap
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(1, 0, AtomFor(0, 1)), nullptr);
}

TEST(AtomSelectionCacheTest, FirstInsertWinsOnRacingKeys) {
  AtomSelectionCache cache(static_cast<size_t>(1) << 20);
  auto first = cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(64));
  auto second = cache.Insert(1, 0, AtomFor(0, 1), BitmapOfRows(64));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(AtomSelectionCacheTest, TableMutationInvalidatesThroughEpoch) {
  Rng rng(5);
  Table t = RandomTable(rng, 300);
  TopKQuery q;
  q.predicate = Predicate::Atom(1, Value::String("CA"));
  q.expr = RankExpr::Column(4);
  q.agg = AggFn::kMax;
  q.k = 5;
  AtomSelectionCache cache(static_cast<size_t>(1) << 20);
  Executor vec;
  ASSERT_TRUE(vec.Execute(t, q, ExecContext{.cache = &cache}).ok());
  const uint64_t epoch_before = t.epoch();
  ASSERT_TRUE(t.AppendRow({Value::String("zz"), Value::String("CA"),
                           Value::String("g0"), Value::Int64(1),
                           Value::Int64(1000), Value::Double(1.0)})
                  .ok());
  EXPECT_NE(t.epoch(), epoch_before);
  // The mutated table must be rescanned, not served the stale bitmap:
  // the new row ranks first under max(v).
  Executor scalar;
  scalar.SetVectorized(false);
  auto ref = scalar.Execute(t, q, ExecContext{});
  auto got = vec.Execute(t, q, ExecContext{.cache = &cache});
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*ref == *got);
  EXPECT_EQ(got->entry(0).entity, "zz");
}

// ---- Full-pipeline equivalence ------------------------------------------

TEST(VectorizedExecTest, PipelineEquivalenceSequentialAndParallel) {
  TrafficGenOptions gen;
  gen.num_customers = 40;
  gen.months_per_customer = 6;
  auto table = TrafficGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  TopKQuery truth;
  truth.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                    Value::String("CA"));
  truth.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  truth.agg = AggFn::kMax;
  truth.k = 5;
  Executor ex;
  auto input = ex.Execute(*table, truth, ExecContext{});
  ASSERT_TRUE(input.ok());

  auto run = [&](bool vectorized, ThreadPool* pool,
                 int num_threads) -> uint64_t {
    PaleoOptions options;
    options.vectorized_execution = vectorized;
    options.num_threads = num_threads;
    Paleo paleo(&*table, options);
    auto report = pool != nullptr
                      ? paleo.RunConcurrent(*input, nullptr, pool)
                      : paleo.RunConcurrent(*input, nullptr, nullptr);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report->found());
    if (!report.ok() || !report->found()) return 0;
    return report->valid[0].query.Hash();
  };

  const uint64_t scalar_seq = run(false, nullptr, 1);
  const uint64_t vec_seq = run(true, nullptr, 1);
  EXPECT_EQ(scalar_seq, vec_seq);
  ThreadPool pool(4);
  const uint64_t vec_par = run(true, &pool, 4);
  EXPECT_EQ(scalar_seq, vec_par);
}

TEST(VectorizedExecTest, PipelineBudgetInterruptionStillWindsDownClean) {
  TrafficGenOptions gen;
  gen.num_customers = 30;
  gen.months_per_customer = 4;
  auto table = TrafficGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  TopKQuery truth;
  truth.predicate = Predicate::Atom(schema.FieldIndex("state"),
                                    Value::String("CA"));
  truth.expr = RankExpr::Column(schema.FieldIndex("minutes"));
  truth.agg = AggFn::kMax;
  truth.k = 5;
  Executor ex;
  auto input = ex.Execute(*table, truth, ExecContext{});
  ASSERT_TRUE(input.ok());
  CancellationToken token;
  token.Cancel();
  RunBudget budget;
  budget.set_cancellation_token(&token);
  PaleoOptions options;  // vectorized by default
  Paleo paleo(&*table, options);
  auto report = paleo.RunConcurrent(*input, &budget, nullptr);
  // Graceful wind-down, not an error: the budget was exhausted before
  // any execution completed.
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->termination, TerminationReason::kCancelled);
}

}  // namespace
}  // namespace paleo
