// Tests for the workload generator.

#include <gtest/gtest.h>

#include "datagen/ssb_gen.h"
#include "datagen/tpch_gen.h"
#include "datagen/traffic_gen.h"
#include "workload/workload.h"

namespace paleo {
namespace {

TEST(WorkloadTest, GeneratesRealizableQueries) {
  TrafficGenOptions gen;
  gen.num_customers = 150;
  gen.months_per_customer = 8;
  auto table = TrafficGen::Generate(gen);
  ASSERT_TRUE(table.ok());

  WorkloadOptions options;
  options.families = {QueryFamily::kMaxA, QueryFamily::kSumA};
  options.predicate_sizes = {1, 2};
  options.ks = {5, 10};
  options.queries_per_config = 2;
  auto workload = WorkloadGen::Generate(*table, options);
  ASSERT_TRUE(workload.ok());
  EXPECT_GT(workload->size(), 8u);  // most of the 16 cells should fill

  Executor ex;
  for (const WorkloadQuery& wq : *workload) {
    // The recorded list is exactly what the query produces.
    auto list = ex.Execute(*table, wq.query, ExecContext{});
    ASSERT_TRUE(list.ok());
    EXPECT_TRUE(list->InstanceEquals(wq.list)) << wq.name;
    EXPECT_EQ(static_cast<int>(wq.list.size()), wq.query.k) << wq.name;
    EXPECT_GT(wq.selectivity, 0.0);
    EXPECT_LE(wq.selectivity, options.max_selectivity);
  }
}

TEST(WorkloadTest, RespectsFamilyShapes) {
  auto table = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(table.ok());
  WorkloadOptions options;
  options.families = {QueryFamily::kMaxA,  QueryFamily::kAvgA,
                      QueryFamily::kSumA,  QueryFamily::kSumAB,
                      QueryFamily::kMulAB, QueryFamily::kNone};
  options.predicate_sizes = {1};
  options.ks = {5};
  options.queries_per_config = 1;
  auto workload = WorkloadGen::Generate(*table, options);
  ASSERT_TRUE(workload.ok());
  for (const WorkloadQuery& wq : *workload) {
    switch (wq.family) {
      case QueryFamily::kMaxA:
        EXPECT_EQ(wq.query.agg, AggFn::kMax);
        EXPECT_TRUE(wq.query.expr.is_single_column());
        break;
      case QueryFamily::kAvgA:
        EXPECT_EQ(wq.query.agg, AggFn::kAvg);
        EXPECT_TRUE(wq.query.expr.is_single_column());
        break;
      case QueryFamily::kSumA:
        EXPECT_EQ(wq.query.agg, AggFn::kSum);
        EXPECT_TRUE(wq.query.expr.is_single_column());
        break;
      case QueryFamily::kSumAB:
        EXPECT_EQ(wq.query.agg, AggFn::kSum);
        EXPECT_EQ(wq.query.expr.kind(), RankExpr::Kind::kAdd);
        break;
      case QueryFamily::kMulAB:
        EXPECT_EQ(wq.query.agg, AggFn::kSum);
        EXPECT_EQ(wq.query.expr.kind(), RankExpr::Kind::kMul);
        break;
      case QueryFamily::kNone:
        EXPECT_EQ(wq.query.agg, AggFn::kNone);
        break;
    }
    EXPECT_EQ(wq.query.predicate.size(), 1);
  }
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  auto table = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(table.ok());
  WorkloadOptions options;
  options.queries_per_config = 2;
  auto a = WorkloadGen::Generate(*table, options);
  auto b = WorkloadGen::Generate(*table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i].query == (*b)[i].query);
  }
}

TEST(WorkloadTest, RejectsEmptyTable) {
  auto schema = Schema::Make({
      {"e", DataType::kString, FieldRole::kEntity},
      {"d", DataType::kString, FieldRole::kDimension},
      {"v", DataType::kInt64, FieldRole::kMeasure},
  });
  Table empty(*schema);
  EXPECT_TRUE(WorkloadGen::Generate(empty, WorkloadOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(WorkloadTest, PerAtomSelectivityBoundExcludesFlagColumns) {
  // Flag-like dimension values cover large fractions of R; the per-atom
  // bound keeps them out of hidden queries.
  auto table = TrafficGen::Generate(TrafficGenOptions{});
  ASSERT_TRUE(table.ok());
  WorkloadOptions options;
  options.families = {QueryFamily::kMaxA};
  options.predicate_sizes = {1};
  options.ks = {5};
  options.queries_per_config = 5;
  options.max_atom_selectivity = 0.02;  // stricter than any single value
  options.max_attempts = 100;
  auto workload = WorkloadGen::Generate(*table, options);
  ASSERT_TRUE(workload.ok());
  // With 200 customers and low-cardinality dims, almost no atom passes
  // a 2% bound except city/month-level values; whatever was produced
  // must obey it.
  Executor ex;
  for (const WorkloadQuery& wq : *workload) {
    for (const AtomicPredicate& atom : wq.query.predicate.atoms()) {
      size_t matches =
          ex.CountMatching(*table, Predicate({atom}), ExecContext{});
      EXPECT_LE(static_cast<double>(matches) /
                    static_cast<double>(table->num_rows()),
                0.02 + 1e-9);
    }
  }
}

TEST(WorkloadTest, PaperExamplesSsb) {
  SsbGenOptions gen;
  gen.scale_factor = 0.005;
  auto table = SsbGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  auto examples = WorkloadGen::PaperExamples(*table, /*ssb=*/true, 5);
  ASSERT_TRUE(examples.ok());
  ASSERT_EQ(examples->size(), 2u);
  const Schema& schema = table->schema();

  const WorkloadQuery& t63 = (*examples)[0];
  EXPECT_EQ(t63.query.agg, AggFn::kAvg);
  EXPECT_EQ(t63.query.predicate.size(), 2);
  EXPECT_NE(t63.query.ToSql(schema).find("MFGR#14"), std::string::npos);
  EXPECT_GT(t63.selectivity, 0.0);

  const WorkloadQuery& t64 = (*examples)[1];
  EXPECT_EQ(t64.query.agg, AggFn::kSum);
  EXPECT_EQ(t64.query.expr.kind(), RankExpr::Kind::kMul);
  EXPECT_EQ(t64.query.predicate.size(), 3);
  EXPECT_NE(t64.query.ToSql(schema).find("d_year = 1995"),
            std::string::npos);
  EXPECT_LT(t64.selectivity, t63.selectivity);
}

TEST(WorkloadTest, PaperExamplesTpch) {
  TpchGenOptions gen;
  gen.scale_factor = 0.005;
  auto table = TpchGen::Generate(gen);
  ASSERT_TRUE(table.ok());
  auto examples = WorkloadGen::PaperExamples(*table, /*ssb=*/false, 5);
  ASSERT_TRUE(examples.ok());
  ASSERT_EQ(examples->size(), 2u);
  const Schema& schema = table->schema();

  const WorkloadQuery& t61 = (*examples)[0];
  EXPECT_EQ(t61.query.agg, AggFn::kMax);
  EXPECT_EQ(t61.query.predicate.size(), 2);
  EXPECT_NE(t61.query.ToSql(schema).find("MEDIUM POLISHED STEEL"),
            std::string::npos);
  EXPECT_GT(t61.selectivity, 0.0);
  EXPECT_LT(t61.selectivity, 0.01);

  const WorkloadQuery& t62 = (*examples)[1];
  EXPECT_EQ(t62.query.agg, AggFn::kSum);
  EXPECT_EQ(t62.query.expr.kind(), RankExpr::Kind::kAdd);
  EXPECT_EQ(t62.query.predicate.size(), 3);
  EXPECT_LT(t62.selectivity, t61.selectivity);
}

}  // namespace
}  // namespace paleo
