"""paleo_analyze: whole-program static analysis passes for the PALEO
C++ tree.

The package splits into a shared lexing/walking substrate (source.py,
findings.py) and one module per pass:

  lock_order      cross-file mutex acquisition graph; fails on cycles
  status_discard  dropped paleo::Status / StatusOr audit
  layering        module include-DAG enforcement (layering.json)
  atomics         relaxed-atomic justification audit

tools/paleo_analyze.py is the CLI driver; tools/paleo_lint.py reuses
source.py so both tools tokenize C++ the same way. Pure stdlib.
"""
