"""Atomics audit.

Relaxed atomics are the sharpest tool in the tree: correct for pure
counters, silently wrong the moment a load is used to ORDER other
memory. The audit makes every use carry its correctness argument:

  * every line using `std::memory_order_relaxed`, and
  * every `std::atomic<...>` variable/member declaration

must be justified by a comment containing the marker `relaxed:` (or
`atomic:` for declarations whose operations use the seq_cst default),
either on the same line or in the same PARAGRAPH — the contiguous run
of non-blank lines containing the use. One comment therefore covers a
whole cluster (a struct of counters, a reset function's stores) without
being repeated per line, but a use separated by a blank line needs its
own argument.

The marker convention mirrors the `// NOLINT`-style greppability rule:
`grep -rn 'relaxed:' src/` lists every ordering argument in the tree.
"""

from __future__ import annotations

import re

from .findings import Finding
from .source import SourceFile

PASS = "atomics"

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
ATOMIC_DECL_RE = re.compile(
    r"\bstd::atomic<[^;()]*>\s+[A-Za-z_]\w*\s*[;{=]")
MARKER_RE = re.compile(r"\b(?:relaxed|atomic):")


def _paragraph_justified(src: SourceFile) -> list[bool]:
    """For each line (0-based), whether its paragraph — the contiguous
    run of non-blank raw lines around it — contains a justification
    marker in comment text."""
    raw_lines = src.raw.splitlines()
    comment_lines = src.comment_lines
    n = len(raw_lines)
    justified = [False] * n
    start = 0
    while start < n:
        if not raw_lines[start].strip():
            start += 1
            continue
        end = start
        while end < n and raw_lines[end].strip():
            end += 1
        has_marker = any(
            MARKER_RE.search(comment_lines[i]) if i < len(comment_lines)
            else False
            for i in range(start, end))
        if has_marker:
            for i in range(start, end):
                justified[i] = True
        start = end
    return justified


def run(sources: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for src in sources:
        justified = _paragraph_justified(src)
        seen_lines: set[int] = set()
        for lineno0, line in enumerate(src.code_lines):
            is_relaxed = bool(RELAXED_RE.search(line))
            is_decl = bool(ATOMIC_DECL_RE.search(line))
            if not (is_relaxed or is_decl):
                continue
            if lineno0 < len(justified) and justified[lineno0]:
                continue
            if lineno0 in seen_lines:
                continue
            seen_lines.add(lineno0)
            what = ("memory_order_relaxed use" if is_relaxed
                    else "std::atomic declaration")
            findings.append(Finding(
                pass_name=PASS, file=src.rel, line=lineno0 + 1,
                message=(f"unjustified {what}: add a '// relaxed: ...' "
                         "(or '// atomic: ...') comment in the same "
                         "paragraph stating why this ordering is "
                         "sufficient"),
                detail=f"line:{lineno0 + 1}"))
    return findings
