"""Finding model, baseline policy, and output rendering.

A Finding carries a stable `key` (pass, file, detail — NO line number,
so unrelated edits don't churn the baseline) plus the precise location
for humans. The baseline file (tools/analyze/baseline.json) lists the
keys of grandfathered findings: they are reported as "baselined" but do
not fail the run. The file may only SHRINK — a baseline entry that no
longer matches any finding is itself an error (`baseline-stale`), which
forces the entry's removal in the same change that fixed the code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Finding:
    pass_name: str
    file: str
    line: int
    message: str
    #: Stable identity for baselining; defaults to pass:file:message.
    detail: str = ""
    baselined: bool = False

    @property
    def key(self) -> str:
        return f"{self.pass_name}:{self.file}:{self.detail or self.message}"

    def to_json(self) -> dict:
        return {
            "pass": self.pass_name,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "key": self.key,
            "baselined": self.baselined,
        }


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def apply_baseline(self, baseline_path: Path,
                       ran_passes: list[str] | None = None) -> None:
        """Marks findings whose key appears in the baseline; appends a
        `baseline-stale` finding for every baseline entry that matched
        nothing (the file may only shrink). When `ran_passes` is given,
        staleness is only judged for entries belonging to a pass that
        actually ran — a --passes subset must not condemn the rest of
        the baseline."""
        if not baseline_path.is_file():
            return
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        keys = set(data.get("grandfathered", []))
        matched: set[str] = set()
        for f in self.findings:
            if f.key in keys:
                f.baselined = True
                matched.add(f.key)
        candidates = keys - matched
        if ran_passes is not None:
            candidates = {k for k in candidates
                          if k.split(":", 1)[0] in ran_passes}
        for stale in sorted(candidates):
            self.findings.append(Finding(
                pass_name="baseline-stale",
                file=str(baseline_path.name),
                line=1,
                message=(f"baseline entry '{stale}' matches no current "
                         "finding; delete it (the baseline may only "
                         "shrink)"),
                detail=stale))

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.baselined]

    def render_text(self) -> str:
        lines: list[str] = []
        for f in sorted(self.findings,
                        key=lambda f: (f.file, f.line, f.pass_name)):
            tag = " (baselined)" if f.baselined else ""
            lines.append(
                f"{f.file}:{f.line}: [{f.pass_name}]{tag} {f.message}")
        active = self.active
        lines.append("")
        lines.append(
            f"paleo_analyze: {len(active)} active finding(s), "
            f"{len(self.findings) - len(active)} baselined.")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_json() for f in sorted(
                    self.findings,
                    key=lambda f: (f.file, f.line, f.pass_name))],
                "active": len(self.active),
                "baselined": len(self.findings) - len(self.active),
            },
            indent=2)
