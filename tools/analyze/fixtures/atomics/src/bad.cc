// Fixture: unjustified atomics. The declaration and the relaxed
// fetch_add below each sit in a paragraph with no 'relaxed:' /
// 'atomic:' marker, so each must produce one finding.
#include <atomic>

namespace fix {

class Hits {
 public:
  void Bump();

 private:
  std::atomic<int> hits_{0};
};

void Hits::Bump() {
  hits_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fix
