// Fixture: justified atomics plus lexer red herrings. Expect zero
// findings: each use carries a marker in its paragraph, and the
// relaxed/atomic tokens hiding inside the string, raw string, and
// comment below must be invisible to the pass.
#include <atomic>
#include <string>

namespace fix {

class Hits {
 public:
  void Bump();
  // One marker covers this whole declaration paragraph.
  // relaxed: pure tally; readers sample, nothing is ordered by it.
  std::atomic<int> hits_{0};
  std::atomic<int> misses_{0};
};

void Hits::Bump() {
  // relaxed: pure tally (see member comment).
  hits_.fetch_add(1, std::memory_order_relaxed);
}

// A use of the token in dead prose: memory_order_relaxed. Not code.
inline std::string RedHerrings() {
  std::string quoted = "std::atomic<int> q{0}; memory_order_relaxed";
  std::string raw = R"(hits_.fetch_add(1, std::memory_order_relaxed);
      std::atomic<bool> inside_raw{false};)";
  return quoted + raw;
}

}  // namespace fix
