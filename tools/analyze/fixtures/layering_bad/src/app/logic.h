// Downward include below: legal.
#include "base/other.h"

namespace fix {
inline int Logic() { return 41; }
}  // namespace fix
