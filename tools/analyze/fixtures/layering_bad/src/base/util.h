// Fixture: an upward include — base (layer 0) reaching into app
// (layer 1). Expect exactly one layering finding with key edge:app.
#include "app/logic.h"

namespace fix {
inline int Util() { return Logic() + 1; }
}  // namespace fix
