// app -> base is a downward edge: legal.
#include "base/util.h"

namespace fix {
inline int Logic() { return Util() + 41; }
}  // namespace fix
