// Fixture: base depends on nothing above it. Expect zero findings.
namespace fix {
inline int Util() { return 1; }
}  // namespace fix
