// Fixture: code that contradicts its own ACQUIRED_BEFORE annotation.
// The declaration promises load_mutex_ is taken before apply_mutex_,
// but Reload nests the other way around; the annotation edge plus the
// observed nesting edge close a cycle.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fix {

class Config {
 public:
  void Reload() {
    MutexLock apply(apply_mutex_);
    MutexLock load(load_mutex_);
  }

 private:
  Mutex load_mutex_ ACQUIRED_BEFORE(apply_mutex_);
  Mutex apply_mutex_;
};

}  // namespace fix
