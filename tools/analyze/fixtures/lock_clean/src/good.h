// Fixture: consistent lock order — every path takes head before tail,
// matching the ACQUIRED_BEFORE declaration. Manual Lock/Unlock and a
// REQUIRES-seeded helper are included so the clean case also exercises
// those harvest paths. Expect zero findings.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fix {

class Pipeline {
 public:
  void Produce() {
    MutexLock head(head_mutex_);
    MutexLock tail(tail_mutex_);
  }

  void Drain() {
    head_mutex_.Lock();
    DrainLocked();
    head_mutex_.Unlock();
  }

  void DrainLocked() REQUIRES(head_mutex_) {
    MutexLock tail(tail_mutex_);
  }

 private:
  Mutex head_mutex_ ACQUIRED_BEFORE(tail_mutex_);
  Mutex tail_mutex_;
};

}  // namespace fix
