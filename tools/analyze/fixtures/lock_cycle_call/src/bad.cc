// Fixture: a CALL-THROUGH deadlock across two classes. Neither
// function nests two locks directly; the cycle only appears once the
// pass resolves calls by receiver type and closes acquire sets:
//   Ledger::Reconcile holds ledger_mutex_ and calls Journal::Record
//     (acquires journal_mutex_)      => ledger -> journal
//   Journal::FlushTo holds journal_mutex_ and calls Ledger::Post
//     (acquires ledger_mutex_)       => journal -> ledger
#include "common/mutex.h"

namespace fix {

class Journal {
 public:
  void Record();
  void FlushTo();

 private:
  Mutex journal_mutex_;
};

class Ledger {
 public:
  void Post();
  void Reconcile();

 private:
  Mutex ledger_mutex_;
};

void Journal::Record() {
  MutexLock lock(journal_mutex_);
}

void Ledger::Post() {
  MutexLock lock(ledger_mutex_);
}

void Ledger::Reconcile() {
  MutexLock lock(ledger_mutex_);
  Journal journal;
  journal.Record();
}

void Journal::FlushTo() {
  MutexLock lock(journal_mutex_);
  Ledger ledger;
  ledger.Post();
}

}  // namespace fix
