// Fixture: the classic two-lock deadlock. TransferAB nests
// a_mutex_ -> b_mutex_ while TransferBA nests b_mutex_ -> a_mutex_;
// the lock-order pass must report exactly one cycle over both.
#include "common/mutex.h"

namespace fix {

class Accounts {
 public:
  void TransferAB() {
    MutexLock a(a_mutex_);
    MutexLock b(b_mutex_);
  }

  void TransferBA() {
    MutexLock b(b_mutex_);
    MutexLock a(a_mutex_);
  }

 private:
  Mutex a_mutex_;
  Mutex b_mutex_;
};

}  // namespace fix
