// Fixture: both Status-discard defects. Persist is harvested as a
// Status-returning name (declared so everywhere), so the bare
// statement call and the reason-less (void) cast must each produce a
// finding — and nothing else in the file may.
#include "common/status.h"

namespace fix {

Status Persist();

Status Persist() { return Status::OK(); }

void BareDiscard() {
  Persist();
}

void UnreasonedCast() {
  (void)Persist();
}

void FineUsage() {
  Status s = Persist();
  if (!s.ok()) {
    return;
  }
}

}  // namespace fix
