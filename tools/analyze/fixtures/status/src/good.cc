// Fixture: every discard is justified and every ambiguous name is
// left alone. Expect zero findings.
#include "common/status.h"

namespace fix {

Status Flush();

Status Flush() { return Status::OK(); }

// Same NAME with a non-Status return type elsewhere in the tree makes
// the name textually ambiguous, so bare calls to it must NOT be
// flagged (the compiler's [[nodiscard]] still covers the Status one).
Status Rotate();
void Rotate(int degrees);

void ReasonedCast() {
  // Discard: best-effort flush; the next tick retries on failure.
  (void)Flush();
}

void CheckedUse() {
  Status s = Flush();
  if (!s.ok()) {
    return;
  }
}

void AmbiguousName() {
  Rotate();
}

}  // namespace fix
