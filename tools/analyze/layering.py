"""Layering-DAG enforcement.

The intended module graph of src/ is declared in layering.json (see its
embedded comment for semantics). This pass extracts every
`#include "module/..."` edge between src/ modules and fails any edge
that climbs the layer order, unless the target module is declared
cross-cutting or the edge is grandfathered in baseline.json.

The finding key is `file -> module` (no line number), so the baseline
entry for a grandfathered edge survives unrelated edits to the file but
disappears — and goes stale, forcing its removal — the moment the last
offending include is deleted.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .findings import Finding
from .source import SourceFile

PASS = "layering"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([A-Za-z_][\w-]*)/',
                        re.MULTILINE)

DEFAULT_SPEC = Path(__file__).resolve().parent / "layering.json"


def load_spec(path: Path | None = None) -> dict:
    spec = json.loads((path or DEFAULT_SPEC).read_text(encoding="utf-8"))
    rank: dict[str, int] = {}
    for level, mods in enumerate(spec["layers"]):
        for mod in mods:
            rank[mod] = level
    spec["_rank"] = rank
    spec["_cross"] = set(spec.get("cross_cutting", []))
    return spec


def module_of(rel: str, src_prefix: str = "src/") -> str | None:
    if not rel.startswith(src_prefix):
        return None
    parts = rel[len(src_prefix):].split("/")
    return parts[0] if len(parts) > 1 else None


def run(sources: list[SourceFile],
        spec_path: Path | None = None,
        src_prefix: str = "src/") -> list[Finding]:
    spec = load_spec(spec_path)
    rank, cross = spec["_rank"], spec["_cross"]
    findings: list[Finding] = []
    for src in sources:
        mod = module_of(src.rel, src_prefix)
        if mod is None:
            continue
        if mod not in rank:
            findings.append(Finding(
                pass_name=PASS, file=src.rel, line=1,
                message=(f"module '{mod}' is not declared in "
                         "layering.json; add it to the layer it "
                         "belongs to"),
                detail=f"unknown-module:{mod}"))
            continue
        # Includes live on preprocessor lines, which the code view
        # keeps; the strings view carries the quoted path.
        reported: set[str] = set()
        for m in INCLUDE_RE.finditer(src.strings):
            dep = m.group(1)
            if dep == mod or dep in cross:
                continue
            if dep not in rank:
                continue  # not a src/ module (system/third-party dirs)
            if rank[dep] <= rank[mod]:
                continue
            if dep in reported:
                continue
            reported.add(dep)
            lineno = src.strings.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                pass_name=PASS, file=src.rel, line=lineno,
                message=(f"illegal include edge: module '{mod}' "
                         f"(layer {rank[mod]}) includes '{dep}' "
                         f"(layer {rank[dep]}); the DAG in "
                         "tools/analyze/layering.json only allows "
                         "same-or-lower-layer includes"),
                detail=f"edge:{dep}"))
    return findings
