"""Lock-order (deadlock) analysis.

Builds the cross-file mutex ACQUISITION GRAPH: a directed edge A -> B
means some code path acquires B while holding A. A cycle in that graph
is a potential deadlock (two threads walking the cycle from different
entry points can each hold the lock the other wants), reported with the
full path trace and the file:line evidence for every edge.

Facts harvested (from the `code` view, so comments/strings are inert):

  1. Mutex members. `Mutex m_;` / `SharedMutex m_;` declarations inside
     a class give the identity `Class::m_`. Ordering annotations on the
     declaration contribute authoritative edges:
         Mutex a_ ACQUIRED_BEFORE(b_);   edge  Class::a_ -> Class::b_
         Mutex b_ ACQUIRED_AFTER(a_);    edge  Class::a_ -> Class::b_
  2. RAII acquisitions. Within each function body, `MutexLock l(expr);`
     (and Writer/Reader flavors) acquires `expr` for its enclosing
     brace scope; manual `expr.Lock()` acquires until `expr.Unlock()`
     or function end. Acquiring N while M is held adds edge M -> N.
     Functions annotated REQUIRES(m) start with m held.
  3. Call-through acquisitions. While holding M, calling a function
     whose (transitively closed) acquired set contains N adds M -> N.
     Callees are resolved by receiver type when a local/param/member
     declaration names it, otherwise by method name when that name is
     unambiguous across classes; ambiguous bare names are skipped
     (soundness gap, kept deliberate to avoid false cycles).

Mutex identity resolution: `m_` inside a method of C with member `m_`
is `C::m_`; `obj.m` / `obj->m` resolves `obj`'s type from declarations
in the same function; anything unresolvable degrades to `file::expr`
(still participates in the graph, never silently dropped).
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field

from .findings import Finding
from .source import SourceFile

PASS = "lock-order"

MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:paleo::)?(Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*(;|ACQUIRED_)")
ACQ_BEFORE_RE = re.compile(r"ACQUIRED_BEFORE\(\s*([A-Za-z_][\w:]*)\s*\)")
ACQ_AFTER_RE = re.compile(r"ACQUIRED_AFTER\(\s*([A-Za-z_][\w:]*)\s*\)")

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CAPABILITY\([^)]*\)\s+)?"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{}]*)?$")
METHOD_DEF_RE = re.compile(
    r"\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\([^;{}]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:[A-Z_]+\([^)]*\)\s*)*$",
    re.DOTALL)
FUNC_DEF_RE = re.compile(
    r"\b(~?[A-Za-z_]\w*)\s*\([^;{}]*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?"
    r"(?:[A-Z_]+\([^)]*\)\s*)*$",
    re.DOTALL)
REQUIRES_RE = re.compile(r"\bREQUIRES(?:_SHARED)?\(\s*([^)]*?)\s*\)")

RAII_LOCK_RE = re.compile(
    r"\b(?:MutexLock|WriterMutexLock|ReaderMutexLock)\s+"
    r"[A-Za-z_]\w*\s*[({]\s*([^;]+?)\s*[)}]\s*;")
MANUAL_LOCK_RE = re.compile(r"([A-Za-z_][\w.>\-]*?)\s*(?:\.|->)Lock\(\)")
MANUAL_UNLOCK_RE = re.compile(r"([A-Za-z_][\w.>\-]*?)\s*(?:\.|->)Unlock\(\)")
CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(")

# Names that look like calls but never acquire anything interesting, or
# are control flow / casts; skipping them keeps the call pass cheap.
CALL_NOISE = {
    "if", "for", "while", "switch", "return", "sizeof", "assert",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "Lock", "Unlock", "TryLock", "LockShared", "UnlockShared",
    "MutexLock", "WriterMutexLock", "ReaderMutexLock", "CondVar",
    "Wait", "WaitUntil", "NotifyOne", "NotifyAll", "defined",
}


@dataclass
class Edge:
    src: str
    dst: str
    file: str
    line: int
    why: str  # "annotation" | "nesting" | "call"


@dataclass
class FunctionInfo:
    qual: str                    # "Class::Name" or "Name"
    cls: str | None
    file: str
    start_line: int
    body: str                    # code view of the body (braces included)
    requires: list[str] = field(default_factory=list)
    acquires: set[str] = field(default_factory=set)
    calls: list[tuple[str | None, str, int]] = field(default_factory=list)


class Harvest:
    """Per-tree harvest: mutex members, annotation edges, functions."""

    def __init__(self) -> None:
        self.members: dict[str, set[str]] = defaultdict(set)  # cls -> names
        self.member_owners: dict[str, set[str]] = defaultdict(set)
        self.edges: list[Edge] = []
        self.functions: list[FunctionInfo] = []

    def qualify(self, name: str, cls: str | None) -> str:
        """Resolves a bare mutex name to Class::name when possible."""
        if "::" in name:
            return name
        if cls and name in self.members.get(cls, ()):
            return f"{cls}::{name}"
        owners = self.member_owners.get(name, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{name}"
        return name


def _scope_headers(code: str):
    """Yields (open_idx, header_text) for every '{' in `code`, where
    header_text is the code between the previous ';', '{', '}' (or
    file start) and the brace."""
    prev_break = 0
    for i, ch in enumerate(code):
        if ch in ";{}":
            if ch == "{":
                yield i, code[prev_break:i]
            prev_break = i + 1


def _matching_brace(code: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def harvest_file(src: SourceFile, h: Harvest) -> None:
    code = src.code
    # ---- class spans: map every offset to the innermost class ----
    class_spans: list[tuple[int, int, str]] = []
    func_spans: list[tuple[int, int]] = []
    for open_idx, header in _scope_headers(code):
        header_tail = header.strip()[-400:]
        m = CLASS_RE.search(header_tail)
        if m and "enum" not in header_tail.split():
            class_spans.append(
                (open_idx, _matching_brace(code, open_idx), m.group(1)))

    def cls_at(idx: int) -> str | None:
        best = None
        for s, e, name in class_spans:
            if s <= idx <= e and (best is None or s > best[0]):
                best = (s, name)
        return best[1] if best else None

    # ---- mutex member declarations + annotation edges ----
    for lm in re.finditer(r"^.*$", code, re.MULTILINE):
        line = lm.group(0)
        dm = MUTEX_DECL_RE.match(line)
        if not dm:
            continue
        name = dm.group(2)
        cls = cls_at(lm.start()) or src.rel
        h.members[cls].add(name)
        h.member_owners[name].add(cls)
    # Second sweep for ordering annotations (needs members filled in to
    # qualify the argument); statement-level so the annotation may wrap.
    for sm in re.finditer(
            r"(?:mutable\s+)?(?:paleo::)?(?:Mutex|SharedMutex)\s+"
            r"([A-Za-z_]\w*)\s*((?:ACQUIRED_(?:BEFORE|AFTER)"
            r"\([^)]*\)\s*)+);", code):
        name, anns = sm.group(1), sm.group(2)
        cls = cls_at(sm.start()) or src.rel
        me = f"{cls}::{name}" if cls else name
        line = src.lineno_at(sm.start())
        for am in ACQ_BEFORE_RE.finditer(anns):
            other = h.qualify(am.group(1), cls if isinstance(cls, str)
                              else None)
            h.edges.append(Edge(me, other, src.rel, line, "annotation"))
        for am in ACQ_AFTER_RE.finditer(anns):
            other = h.qualify(am.group(1), cls if isinstance(cls, str)
                              else None)
            h.edges.append(Edge(other, me, src.rel, line, "annotation"))

    # ---- function bodies ----
    for open_idx, header in _scope_headers(code):
        header_tail = header[-600:]
        cls: str | None
        mm = METHOD_DEF_RE.search(header_tail)
        if mm and mm.group(1) not in ("std", "paleo", "obs"):
            cls, fname = mm.group(1), mm.group(2)
        else:
            fm = FUNC_DEF_RE.search(header_tail)
            if not fm:
                continue
            fname = fm.group(1)
            if fname in CALL_NOISE or CLASS_RE.search(header_tail):
                continue
            cls = cls_at(open_idx)
        close_idx = _matching_brace(code, open_idx)
        body = code[open_idx:close_idx + 1]
        requires = []
        for rm in REQUIRES_RE.finditer(header_tail):
            requires.extend(a.strip() for a in rm.group(1).split(",")
                            if a.strip())
        qual = f"{cls}::{fname}" if cls else fname
        h.functions.append(FunctionInfo(
            qual=qual, cls=cls, file=src.rel,
            start_line=src.lineno_at(open_idx), body=body,
            requires=requires))


LOCAL_DECL_RE = r"(?:const\s+)?([A-Za-z_]\w*)\s*[&*]?\s+{name}\s*[=;({{]"
SMART_DECL_RE = (r"(?:const\s+)?(?:std::)?"
                 r"(?:shared_ptr|unique_ptr|weak_ptr)\s*<\s*"
                 r"(?:const\s+)?([A-Za-z_]\w*)\s*>\s*&?\s*{name}\b")


def _receiver_type(recv: str, fn: FunctionInfo) -> str | None:
    """Resolves the declared type of `recv` from local/param decls in
    the function body, seeing through smart-pointer wrappers."""
    esc = re.escape(recv)
    tm = re.search(SMART_DECL_RE.format(name=esc), fn.body)
    if tm:
        return tm.group(1)
    tm = re.search(LOCAL_DECL_RE.format(name=esc), fn.body)
    if tm:
        return tm.group(1)
    return None


def resolve_expr(expr: str, fn: FunctionInfo, h: Harvest,
                 src_rel: str) -> str:
    """Maps a lock-acquisition expression to a mutex identity."""
    expr = expr.strip()
    expr = re.sub(r"^\*", "", expr).strip()
    if re.fullmatch(r"[A-Za-z_]\w*", expr):
        return h.qualify(expr, fn.cls)
    m = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)", expr)
    if m:
        obj, member = m.group(1), m.group(2)
        if obj == "this":
            return h.qualify(member, fn.cls)
        rtype = _receiver_type(obj, fn)
        if rtype and rtype in h.members and member in h.members[rtype]:
            return f"{rtype}::{member}"
        owners = h.member_owners.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
    return f"{src_rel}::{expr}"


def analyze_function(fn: FunctionInfo, h: Harvest,
                     resolve_calls: bool) -> list[Edge]:
    """Scans one function body: RAII scopes, manual Lock/Unlock, and
    (second phase) call-through edges. Records acquisitions into
    fn.acquires as a side effect."""
    edges: list[Edge] = []
    held: list[str] = [h.qualify(r, fn.cls) for r in fn.requires]
    scope_stack: list[list[str]] = [[]]
    body = fn.body
    line0 = fn.start_line

    events: list[tuple[int, str, object]] = []
    for i, ch in enumerate(body):
        if ch == "{":
            events.append((i, "open", None))
        elif ch == "}":
            events.append((i, "close", None))
    for m in RAII_LOCK_RE.finditer(body):
        events.append((m.start(), "acquire", m.group(1)))
    for m in MANUAL_LOCK_RE.finditer(body):
        events.append((m.start(), "acquire", m.group(1)))
    for m in MANUAL_UNLOCK_RE.finditer(body):
        events.append((m.start(), "release", m.group(1)))
    if resolve_calls:
        for m in CALL_RE.finditer(body):
            recv, callee = m.group(1), m.group(2)
            if callee in CALL_NOISE:
                continue
            events.append((m.start(), "call", (recv, callee)))
    events.sort(key=lambda e: (e[0], e[1] == "open"))

    name_index = {f.qual.rsplit("::", 1)[-1]: [] for f in h.functions}
    if resolve_calls:
        name_index = defaultdict(list)
        for f in h.functions:
            name_index[f.qual.rsplit("::", 1)[-1]].append(f)

    for off, kind, payload in events:
        line = line0 + body.count("\n", 0, off)
        if kind == "open":
            scope_stack.append([])
        elif kind == "close":
            if len(scope_stack) > 1:
                for ident in scope_stack.pop():
                    if ident in held:
                        held.remove(ident)
        elif kind == "acquire":
            ident = resolve_expr(str(payload), fn, h, fn.file)
            for prior in held:
                if prior != ident:
                    edges.append(Edge(prior, ident, fn.file, line,
                                      "nesting"))
            held.append(ident)
            scope_stack[-1].append(ident)
            fn.acquires.add(ident)
        elif kind == "release":
            ident = resolve_expr(str(payload), fn, h, fn.file)
            if ident in held:
                held.remove(ident)
                for scope in scope_stack:
                    if ident in scope:
                        scope.remove(ident)
        elif kind == "call":
            if not held:
                continue
            recv, callee = payload  # type: ignore[misc]
            targets = _resolve_call(recv, callee, fn, h, name_index)
            for target in targets:
                for acq in sorted(target.acquires):
                    if acq not in held:
                        edges.append(Edge(held[-1], acq, fn.file, line,
                                          f"call:{target.qual}"))
    return edges


def _resolve_call(recv: str | None, callee: str, fn: FunctionInfo,
                  h: Harvest, name_index) -> list[FunctionInfo]:
    """Resolves a call site to candidate FunctionInfos whose acquires
    matter. Ambiguity is judged over ALL same-name functions, not just
    the acquiring ones — otherwise a lock-free twin (Dictionary::Insert
    vs AtomSelectionCache::Insert) would be silently dropped and the
    bare name would wrongly resolve to the acquiring class."""
    candidates = list(name_index.get(callee, ()))
    if not any(f.acquires for f in candidates):
        return []
    if recv is None or recv == "this":
        same = [f for f in candidates if f.cls == fn.cls]
        if same:
            return [f for f in same if f.acquires]
        free = [f for f in candidates if f.cls is None]
        if free:
            return [f for f in free if f.acquires]
    else:
        rtype = _receiver_type(recv, fn)
        if rtype is not None:
            # Receiver type known: resolve exactly (possibly to nothing).
            return [f for f in candidates
                    if f.cls == rtype and f.acquires]
    classes = {f.cls for f in candidates}
    if len(classes) == 1:
        return [f for f in candidates if f.acquires]
    return []  # ambiguous bare name: skip rather than invent cycles


def find_cycles(edges: list[Edge]) -> list[list[Edge]]:
    """Elementary cycles via DFS back-edge detection, deduplicated by
    their canonical node rotation."""
    graph: dict[str, list[Edge]] = defaultdict(list)
    seen_pair: set[tuple[str, str]] = set()
    for e in edges:
        if (e.src, e.dst) not in seen_pair:
            seen_pair.add((e.src, e.dst))
            graph[e.src].append(e)

    cycles: list[list[Edge]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}
    path: list[Edge] = []

    def dfs(node: str) -> None:
        state[node] = 1
        for e in graph.get(node, ()):
            if state.get(e.dst, 0) == 1:
                start = next(i for i, pe in enumerate(path)
                             if pe.src == e.dst)
                cyc = path[start:] + [e]
                nodes = tuple(c.src for c in cyc)
                rot = min(range(len(nodes)),
                          key=lambda i: nodes[i:] + nodes[:i])
                canon = nodes[rot:] + nodes[:rot]
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(cyc)
            elif state.get(e.dst, 0) == 0:
                path.append(e)
                dfs(e.dst)
                path.pop()
        state[node] = 2

    for node in list(graph):
        if state.get(node, 0) == 0:
            dfs(node)
    return cycles


def run(sources: list[SourceFile]) -> list[Finding]:
    h = Harvest()
    for src in sources:
        harvest_file(src, h)
    # Phase 1: intra-function nesting edges + per-function acquire sets.
    edges = list(h.edges)
    for fn in h.functions:
        edges.extend(analyze_function(fn, h, resolve_calls=False))
    # Transitive closure of acquire sets through same-name calls, so a
    # call-through edge sees everything the callee chain can take.
    changed = True
    rounds = 0
    by_name = defaultdict(list)
    for f in h.functions:
        by_name[f.qual.rsplit("::", 1)[-1]].append(f)
    while changed and rounds < 8:
        changed = False
        rounds += 1
        for fn in h.functions:
            for m in CALL_RE.finditer(fn.body):
                recv, callee = m.group(1), m.group(2)
                if callee in CALL_NOISE:
                    continue
                for target in _resolve_call(recv, callee, fn, h, by_name):
                    extra = target.acquires - fn.acquires
                    if extra:
                        fn.acquires |= extra
                        changed = True
    # Phase 2: call-through edges with closed acquire sets.
    for fn in h.functions:
        edges.extend(analyze_function(fn, h, resolve_calls=True))

    findings: list[Finding] = []
    for cyc in find_cycles(edges):
        trace = " -> ".join(
            f"{e.src} ({e.file}:{e.line}, {e.why})" for e in cyc)
        trace += f" -> {cyc[-1].dst}"
        nodes = sorted({e.src for e in cyc})
        findings.append(Finding(
            pass_name=PASS,
            file=cyc[0].file,
            line=cyc[0].line,
            message=f"lock-order cycle (potential deadlock): {trace}",
            detail="cycle:" + ",".join(nodes)))
    return findings
