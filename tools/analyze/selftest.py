"""Fixture self-tests for the analyzer passes.

Each fixture under tools/analyze/fixtures/ is a miniature repo (its
own src/ tree, plus a layering.json where the pass needs one). The
tests run the REAL pass entry points over them and assert on the
finding sets — the bad fixtures must produce exactly the seeded
defects, the good twins exactly nothing. Registered in ctest as
`analyze_selftest`; also reachable via `paleo_analyze.py --selftest`.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from . import atomics, layering, lock_order, status_discard
from .findings import Finding, Report
from .source import load_sources, scan_views

FIXTURES = Path(__file__).resolve().parent / "fixtures"

_failures: list[str] = []


def _check(name: str, cond: bool, detail: str = "") -> None:
    if cond:
        print(f"  PASS  {name}")
    else:
        print(f"  FAIL  {name}  {detail}")
        _failures.append(name)


def _tree(fixture: str):
    return load_sources(FIXTURES / fixture, dirs=("src",))


def _test_scan_views() -> None:
    code, strings, comments = scan_views(
        'int x = 1\'000\'000;\n'
        'auto s = R"delim(std::mutex inside raw)delim";\n'
        '// std::mutex in a comment\n'
        'const char* t = "std::mutex in a string";\n')
    _check("scan_views.digit-separator", "1'000'000" in code)
    _check("scan_views.raw-string-blanked-from-code",
           "inside raw" not in code, "raw string body leaked into code")
    _check("scan_views.raw-string-kept-in-strings",
           "inside raw" in strings)
    _check("scan_views.comment-only-view",
           "std::mutex in a comment" in comments and
           "std::mutex in a string" not in comments)
    _check("scan_views.line-structure",
           code.count("\n") == strings.count("\n") == comments.count("\n"))


def _test_lock_order() -> None:
    direct = lock_order.run(_tree("lock_cycle_direct"))
    _check("lock-order.direct-cycle-found", len(direct) == 1,
           f"expected 1 cycle, got {len(direct)}")
    if direct:
        msg = direct[0].message
        _check("lock-order.direct-cycle-names",
               "Accounts::a_mutex_" in msg and "Accounts::b_mutex_" in msg,
               msg)
        _check("lock-order.direct-cycle-trace",
               "src/bad.h" in msg and "nesting" in msg, msg)

    call = lock_order.run(_tree("lock_cycle_call"))
    _check("lock-order.call-through-cycle-found", len(call) == 1,
           f"expected 1 cycle, got {len(call)}")
    if call:
        msg = call[0].message
        _check("lock-order.call-through-cycle-names",
               "Ledger::ledger_mutex_" in msg and
               "Journal::journal_mutex_" in msg, msg)

    ann = lock_order.run(_tree("lock_annotation"))
    _check("lock-order.annotation-contradiction", len(ann) == 1,
           f"expected 1 cycle, got {len(ann)}")
    if ann:
        _check("lock-order.annotation-edge-in-trace",
               "annotation" in ann[0].message, ann[0].message)

    clean = lock_order.run(_tree("lock_clean"))
    _check("lock-order.clean", not clean,
           "; ".join(f.message for f in clean))


def _test_status_discard() -> None:
    findings = status_discard.run(_tree("status"))
    by_kind = sorted(f.detail.split(":")[0] for f in findings)
    _check("status-discard.exactly-the-seeded-defects",
           by_kind == ["bare-call", "void-cast"],
           f"got {[f.detail for f in findings]}")
    _check("status-discard.all-in-bad-file",
           all(f.file.endswith("bad.cc") for f in findings),
           f"got {[f.file for f in findings]}")


def _test_layering() -> None:
    bad = layering.run(_tree("layering_bad"),
                       spec_path=FIXTURES / "layering_bad" / "layering.json")
    _check("layering.upward-edge-found",
           len(bad) == 1 and bad[0].detail == "edge:app" and
           bad[0].file == "src/base/util.h",
           f"got {[(f.file, f.detail) for f in bad]}")
    good = layering.run(_tree("layering_good"),
                        spec_path=FIXTURES / "layering_good" /
                        "layering.json")
    _check("layering.clean", not good,
           "; ".join(f.message for f in good))


def _test_atomics() -> None:
    bad = atomics.run(_tree("atomics"))
    bad_files = {f.file for f in bad}
    _check("atomics.bad-sites-found", len(bad) == 2,
           f"expected 2, got {[(f.file, f.line) for f in bad]}")
    _check("atomics.good-file-clean", bad_files == {"src/bad.cc"},
           f"files: {bad_files}")


def _test_baseline_policy() -> None:
    report = Report()
    report.extend([Finding(pass_name="layering", file="src/a/x.h", line=3,
                           message="edge", detail="edge:b")])
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump({"grandfathered": ["layering:src/a/x.h:edge:b",
                                     "layering:src/gone.h:edge:c"]}, tf)
        baseline = Path(tf.name)
    try:
        report.apply_baseline(baseline, ran_passes=["layering"])
        _check("baseline.matching-entry-suppresses",
               report.findings[0].baselined)
        stale = [f for f in report.active
                 if f.pass_name == "baseline-stale"]
        _check("baseline.stale-entry-fails",
               len(stale) == 1 and "src/gone.h" in stale[0].message,
               f"got {[f.message for f in report.active]}")
        report2 = Report()
        report2.apply_baseline(baseline, ran_passes=["atomics"])
        _check("baseline.subset-run-skips-other-passes",
               not report2.findings,
               f"got {[f.message for f in report2.findings]}")
    finally:
        baseline.unlink()


def run_selftests() -> int:
    print("paleo_analyze fixture self-tests:")
    _test_scan_views()
    _test_lock_order()
    _test_status_discard()
    _test_layering()
    _test_atomics()
    _test_baseline_policy()
    if _failures:
        print(f"selftest: {len(_failures)} FAILURE(S): "
              f"{', '.join(_failures)}")
        return 1
    print("selftest: all passed")
    return 0
