"""Shared C++ lexing substrate and file walking.

One scan of a translation unit produces three same-shape views (equal
length, identical line structure, so a line/column in one view is the
same line/column in the others):

  code      comments AND string/char literals blanked — the view rule
            regexes match against, so quoted code in tests ("std::mutex"
            inside an EXPECT message) can never false-positive;
  strings   comments blanked, string literals kept — for rules that
            read names out of literals (metric names, fault points);
  comments  everything EXCEPT comment text blanked — for rules that
            require justification comments (atomics audit,
            status-discard reasons).

The scanner understands // and /* */ comments, "..." and '...'
literals with escapes, and raw strings R"delim(...)delim" with any
prefix (u8R, LR, ...) — the construct the PR-4-era stripper mishandled
(it treated R"( as an ordinary string opened at the first quote, so the
raw string's BODY leaked into the code view and its terminator could
swallow following code).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

#: Directories holding C++ sources, in walk order. src/ is the
#: analyzed program; the rest are swept by the passes that extend to
#: call sites (status-discard, exec-context lint).
SRC_DIRS = ("src",)
ALL_CXX_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = (".h", ".cc", ".cpp")

_RAW_PREFIX_RE = re.compile(r'(?:u8|[uUL])?R$')


def scan_views(text: str) -> tuple[str, str, str]:
    """Returns (code, strings, comments) views of `text` (see module
    docstring). All three preserve newlines, so line numbers computed
    on any view match the original file."""
    n = len(text)
    code: list[str] = []
    strings: list[str] = []
    comments: list[str] = []

    def emit(chunk: str, *, to_code: bool, to_strings: bool,
             to_comments: bool) -> None:
        blank = "".join(c if c == "\n" else " " for c in chunk)
        code.append(chunk if to_code else blank)
        strings.append(chunk if to_strings else blank)
        comments.append(chunk if to_comments else blank)

    i = 0
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            emit(text[i:j], to_code=False, to_strings=False,
                 to_comments=True)
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            emit(text[i:j], to_code=False, to_strings=False,
                 to_comments=True)
            i = j
        elif ch == '"':
            # Raw string? Look back over the (possibly prefixed) R.
            k = i
            while k > 0 and text[k - 1].isalnum():
                k -= 1
            if _RAW_PREFIX_RE.search(text[k:i]):
                open_paren = text.find("(", i + 1)
                if open_paren == -1:
                    emit(text[i:], to_code=False, to_strings=True,
                         to_comments=False)
                    i = n
                    continue
                delim = text[i + 1:open_paren]
                close = text.find(")" + delim + '"', open_paren + 1)
                j = n if close == -1 else close + len(delim) + 2
                emit(text[i:j], to_code=False, to_strings=True,
                     to_comments=False)
                i = j
            else:
                j = i + 1
                while j < n and text[j] not in '"\n':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
                emit(text[i:j], to_code=False, to_strings=True,
                     to_comments=False)
                i = j
        elif ch == "'":
            # Char literal — but NOT a digit separator (1'000'000).
            prev = text[i - 1] if i > 0 else ""
            if prev.isdigit():
                emit(ch, to_code=True, to_strings=True, to_comments=False)
                i += 1
                continue
            j = i + 1
            while j < n and text[j] not in "'\n":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            emit(text[i:j], to_code=False, to_strings=True,
                 to_comments=False)
            i = j
        else:
            emit(ch, to_code=True, to_strings=True, to_comments=False)
            i += 1
    return "".join(code), "".join(strings), "".join(comments)


@dataclass
class SourceFile:
    """A scanned C++ file with its three views, lazily split into
    lines. `rel` is the repo-relative path used in findings."""
    path: Path
    rel: str
    raw: str
    code: str
    strings: str
    comments: str
    _code_lines: list[str] | None = field(default=None, repr=False)
    _comment_lines: list[str] | None = field(default=None, repr=False)

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "SourceFile":
        root = root or REPO
        raw = path.read_text(encoding="utf-8")
        code, strings, comments = scan_views(raw)
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(path=path, rel=rel, raw=raw, code=code,
                   strings=strings, comments=comments)

    @property
    def code_lines(self) -> list[str]:
        if self._code_lines is None:
            self._code_lines = self.code.splitlines()
        return self._code_lines

    @property
    def comment_lines(self) -> list[str]:
        if self._comment_lines is None:
            self._comment_lines = self.comments.splitlines()
        return self._comment_lines

    def lineno_at(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


def walk_files(root: Path | None = None,
               dirs: tuple[str, ...] = SRC_DIRS) -> list[Path]:
    """All C++ files under `dirs` of `root`, sorted for stable
    finding order."""
    root = root or REPO
    out: list[Path] = []
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        out.extend(p for p in base.rglob("*")
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    return sorted(out)


def load_sources(root: Path | None = None,
                 dirs: tuple[str, ...] = SRC_DIRS) -> list[SourceFile]:
    root = root or REPO
    return [SourceFile.load(p, root) for p in walk_files(root, dirs)]
