"""Status-discard enforcement.

paleo::Status / StatusOr are [[nodiscard]] and -Werror=unused-result is
on in every build lane, so the COMPILER already rejects a naked
discard. This pass closes the two gaps the compiler leaves:

  1. `(void)StatusCall(...)` compiles silently — the cast suppresses
     the warning. House rule: an explicit discard must say WHY. The
     cast needs a justification comment on the same line or in the
     contiguous comment block directly above the statement.
  2. Code that is not compiled in every lane (platform/ifdef'd blocks,
     dead branches) never meets the compiler. The textual sweep flags
     bare `StatusCall(...);` statements everywhere, including tests/,
     bench/, and examples/.

The set of Status-returning callables is harvested from the tree
itself: every function declared/defined with a `Status` or
`StatusOr<...>` return type, plus the macros known to expand to a
Status expression (PALEO_FAULT_POINT).
"""

from __future__ import annotations

import re

from .findings import Finding
from .source import SourceFile

PASS = "status-discard"

#: Any function-shaped declaration/definition: return type + optional
#: qualifier + name + '('. Used twice: names whose return type is
#: Status/StatusOr feed the flaggable set, and names ALSO declared with
#: any other return type are removed from it — textual call sites
#: cannot see the receiver's type, so only names that are
#: Status-returning EVERYWHERE in the tree are safe to flag
#: (TopKList::Append returns void while Ingestor::Append returns
#: Status, so 'Append' is never flagged textually; the compiler's
#: [[nodiscard]] still covers it precisely).
ANY_DECL_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+"
    r"|\[\[nodiscard\]\]\s*)*"
    r"([A-Za-z_][\w:]*(?:<[^;{}=]*?>)?)\s*[&*]?\s+"
    r"(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\(")

RETTYPE_KEYWORDS = {
    "new", "delete", "return", "co_return", "throw", "else", "case",
    "goto", "using", "typedef", "namespace", "template", "typename",
    "operator", "sizeof", "alignof", "decltype",
}

#: Macros that expand to a Status-typed expression.
STATUS_MACROS = {"PALEO_FAULT_POINT"}

#: Harvested names that are too generic to flag textually (would match
#: unrelated same-name functions returning void in other classes).
NAME_BLOCKLIST = {"OK"}

VOID_CAST_RE = re.compile(
    r"\(void\)\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(")

BARE_CALL_RE = re.compile(
    r"(?:^|[;{}])\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(")


def harvest_status_fns(sources: list[SourceFile]) -> set[str]:
    status_names: set[str] = set()
    other_names: set[str] = set()
    for src in sources:
        for m in ANY_DECL_RE.finditer(src.code):
            rettype, name = m.group(1), m.group(2)
            if rettype in RETTYPE_KEYWORDS or name in NAME_BLOCKLIST:
                continue
            bare = rettype.removeprefix("paleo::")
            if bare == "Status" or bare.startswith("StatusOr<") or \
                    bare.startswith("StatusOr "):
                status_names.add(name)
            else:
                other_names.add(name)
    return (status_names - other_names) | set(STATUS_MACROS)


def _has_reason(src: SourceFile, lineno: int) -> bool:
    """True when a justification comment accompanies the statement at
    `lineno` (1-based): non-empty comment text on the same line, or a
    contiguous run of comment-bearing lines directly above it."""
    lines = src.comment_lines
    raw_lines = src.code_lines

    def comment_text(i: int) -> str:
        return lines[i - 1].strip() if 0 < i <= len(lines) else ""

    if re.search(r"\w", comment_text(lineno)):
        return True
    i = lineno - 1
    while i >= 1:
        has_comment = bool(re.search(r"\w", comment_text(i)))
        has_code = bool(raw_lines[i - 1].strip()) if i <= len(raw_lines) \
            else False
        if has_comment:
            return True
        if has_code or (not has_comment and
                        not (i <= len(raw_lines) and
                             raw_lines[i - 1].strip() == "")):
            break
        i -= 1
    return False


def _statement_is_bare_call(code: str, call_end: int) -> bool:
    """True when the call whose '(' is at call_end-1 is a whole
    statement: balanced parens followed (modulo whitespace) by ';'."""
    depth = 0
    i = call_end - 1
    n = len(code)
    while i < n:
        ch = code[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                j = i + 1
                while j < n and code[j] in " \t\n":
                    j += 1
                return j < n and code[j] == ";"
        elif ch in "{};":
            return False
        i += 1
    return False


def run(sources: list[SourceFile],
        call_site_sources: list[SourceFile] | None = None) -> list[Finding]:
    """`sources` feeds the harvest (the program under analysis);
    `call_site_sources` (default: same list) is where discards are
    flagged — the driver passes src+tests+bench+examples."""
    status_fns = harvest_status_fns(sources)
    findings: list[Finding] = []
    for src in call_site_sources or sources:
        code = src.code
        # (void) discards need a reason.
        for m in VOID_CAST_RE.finditer(code):
            if m.group(1) not in status_fns:
                continue
            lineno = src.lineno_at(m.start())
            if not _has_reason(src, lineno):
                findings.append(Finding(
                    pass_name=PASS, file=src.rel, line=lineno,
                    message=(f"(void)-discarded Status from "
                             f"'{m.group(1)}' without a reason comment; "
                             "say why dropping the error is safe (same "
                             "line or the comment block above)"),
                    detail=f"void-cast:{m.group(1)}:{lineno}"))
        # Bare statement-position calls (belt and braces under ifdefs).
        for m in BARE_CALL_RE.finditer(code):
            name = m.group(1)
            if name not in status_fns:
                continue
            # The [;{}] anchor means the call IS the first token of its
            # statement; wrapped calls (PALEO_RETURN_NOT_OK(...),
            # EXPECT_*, assignments, returns) never match here. The
            # balanced-paren check below confirms the call is the WHOLE
            # statement.
            if not _statement_is_bare_call(code, m.end()):
                continue
            lineno = src.lineno_at(m.end() - 1)
            findings.append(Finding(
                pass_name=PASS, file=src.rel, line=lineno,
                message=(f"result of Status-returning '{name}' is "
                         "discarded; check it, propagate it "
                         "(PALEO_RETURN_NOT_OK), or write "
                         "'(void)' with a reason comment"),
                detail=f"bare-call:{name}:{lineno}"))
    return findings
