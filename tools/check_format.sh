#!/usr/bin/env bash
# Diff-checks the tree against .clang-format. Exit 1 (with the diff) on
# any deviation; pass --fix to rewrite files in place instead.
#
# Usage:
#   tools/check_format.sh          # check, print diff, exit 1 if dirty
#   tools/check_format.sh --fix    # reformat in place
#
# Environment:
#   CLANG_FORMAT  clang-format binary (default: first of clang-format,
#                 clang-format-{19..14} on PATH).
#
# Containers without clang-format SKIP with exit 0 and a loud notice;
# CI's analyze job installs clang-format and runs the real check.

set -u -o pipefail

cd "$(dirname "$0")/.."

find_clang_format() {
  if [[ -n "${CLANG_FORMAT:-}" ]]; then
    command -v "$CLANG_FORMAT" && return 0
  fi
  local candidate
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15 \
                   clang-format-14; do
    command -v "$candidate" && return 0
  done
  return 1
}

FMT="$(find_clang_format)" || {
  echo "check_format.sh: SKIPPED — no clang-format on PATH (set" >&2
  echo "CLANG_FORMAT or install clang-format); CI runs the real check." >&2
  exit 0
}

mapfile -t SOURCES < <(find src tests bench examples \
    \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$FMT" -i --style=file "${SOURCES[@]}"
  echo "check_format.sh: reformatted ${#SOURCES[@]} files."
  exit 0
fi

DIRTY=0
for f in "${SOURCES[@]}"; do
  if ! diff -u "$f" <("$FMT" --style=file "$f") \
      --label "$f" --label "$f (clang-format)"; then
    DIRTY=1
  fi
done

if [[ "$DIRTY" -ne 0 ]]; then
  echo "check_format.sh: FAILED — run tools/check_format.sh --fix." >&2
  exit 1
fi
echo "check_format.sh: OK — ${#SOURCES[@]} files clean."
