#!/usr/bin/env python3
"""paleo_analyze: whole-program static analysis for the PALEO tree.

Four passes over the C++ sources (see tools/analyze/ for each pass's
contract, DESIGN.md §16 for the architecture):

  lock-order       cross-file mutex acquisition graph; fails on cycles
                   with a path trace (deadlock lint)
  status-discard   dropped paleo::Status audit: (void) casts need a
                   reason comment; bare discards are flagged even in
                   code the compiler lanes never build
  layering         module include-DAG enforcement against
                   tools/analyze/layering.json
  atomics          every memory_order_relaxed use / std::atomic
                   declaration carries a 'relaxed:' justification

Baseline policy: tools/analyze/baseline.json lists grandfathered
finding keys. Baselined findings don't fail the run; stale entries DO
(the file may only shrink). Exit 0 = clean, 1 = active findings,
2 = internal error.

  tools/paleo_analyze.py                    # human-readable
  tools/paleo_analyze.py --format=json      # machine-readable (CI)
  tools/paleo_analyze.py --selftest         # fixture self-tests

Pure stdlib; wired into ctest as `analyze` / `analyze_selftest` and
into CI's analyze + paleo-analyze lanes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze import atomics, layering, lock_order, status_discard  # noqa: E402
from analyze.findings import Report  # noqa: E402
from analyze.source import ALL_CXX_DIRS, REPO, load_sources  # noqa: E402

PASSES = ("lock-order", "status-discard", "layering", "atomics")


def run_passes(root: Path, selected: list[str]) -> Report:
    report = Report()
    src_sources = load_sources(root, dirs=("src",))
    if "lock-order" in selected:
        report.extend(lock_order.run(src_sources))
    if "status-discard" in selected:
        all_sources = src_sources + load_sources(
            root, dirs=tuple(d for d in ALL_CXX_DIRS if d != "src"))
        report.extend(status_discard.run(src_sources, all_sources))
    if "layering" in selected:
        report.extend(layering.run(src_sources))
    if "atomics" in selected:
        report.extend(atomics.run(src_sources))
    return report


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="paleo_analyze.py",
        description="PALEO whole-program static analyzer")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--root", type=Path, default=REPO,
                    help="tree to analyze (default: this repo)")
    ap.add_argument("--baseline", type=Path,
                    default=Path(__file__).resolve().parent /
                    "analyze" / "baseline.json",
                    help="baseline file; 'none' disables baselining")
    ap.add_argument("--passes", default=",".join(PASSES),
                    help="comma-separated subset of: " + ", ".join(PASSES))
    ap.add_argument("--output", type=Path, default=None,
                    help="also write the rendered report to this file")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture self-tests and exit")
    args = ap.parse_args(argv)

    if args.selftest:
        from analyze.selftest import run_selftests
        return run_selftests()

    selected = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in selected if p not in PASSES]
    if unknown:
        print(f"paleo_analyze: unknown pass(es): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    report = run_passes(args.root, selected)
    if str(args.baseline) != "none":
        report.apply_baseline(args.baseline, ran_passes=selected)

    rendered = (report.render_json() if args.format == "json"
                else report.render_text())
    print(rendered)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    if report.active:
        if args.format == "text":
            print("paleo_analyze: FAILED", file=sys.stderr)
        return 1
    if args.format == "text":
        print("paleo_analyze: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
