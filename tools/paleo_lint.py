#!/usr/bin/env python3
"""Repo-specific linter for PALEO house invariants.

Enforces the contracts the generic tools (clang-tidy, -Wthread-safety)
cannot express, across src/ (and where noted, the whole tree):

  raw-sync        Concurrent code uses the annotated wrappers in
                  common/mutex.h. Raw std::mutex / std::shared_mutex /
                  std::condition_variable members (and std lock guards)
                  are invisible to the Clang thread-safety analysis, so
                  they are forbidden outside common/mutex.h.
  guarded-by      Every Mutex / SharedMutex member is accompanied by at
                  least one GUARDED_BY(that_mutex) field in the same
                  file: a mutex that guards nothing is dead weight or an
                  undeclared invariant.
  naked-new       No naked new / delete outside the arena-style
                  allocators that own them (whitelist below); everything
                  else uses std::make_unique / make_shared / containers.
  metric-names    Metric series registered on a MetricsRegistry are
                  paleo_*-prefixed (Prometheus namespace hygiene), each
                  family name maps to exactly one instrument kind, and
                  unit suffixes pin the kind (_total => Counter,
                  _ms => Histogram, _bytes => Gauge).
  span-balance    Every Trace::StartSpan call is either owned by a
                  ScopedSpan (RAII end on all exit paths) or its span id
                  is stored in a variable that has a matching EndSpan in
                  the same file.
  contract-docs   Public headers in src/paleo and src/service document
                  their thread-safety contract.
  fault-points    PALEO_FAULT_POINT site names are dotted kebab-case
                  ("subsystem.stage" segments of [a-z0-9-]) and each
                  name is registered at exactly one src/ site, so a
                  chaos spec armed by name targets one known line.
  exec-context    HARD BAN, tree-wide (src/, tests/, bench/,
                  examples/): the positional Execute / ExecuteOnRows /
                  CountMatching overloads were DELETED in PR 9; every
                  call passes one ExecContext (engine/exec_context.h)
                  as the final argument. A call whose argument shape
                  matches the old positional wrappers (too few
                  arguments, or a trailing budget/cache argument where
                  the context belongs) is an error.
  service-table-ptr
                  The serving layer never holds a raw Table pointer:
                  sessions pin a shared_ptr<const TableSnapshot> from
                  the TableCatalog, so an in-flight run keeps its
                  version alive however far ingestion advances. A
                  `Table*` in src/service/ is a lifetime bug waiting
                  for the first live-table deployment.

Lexing and file walking are shared with tools/analyze (source.py): one
scanner produces comment-blanked, string-blanked, and comment-only
views that understand raw strings — R"(...)" bodies can no longer leak
into the code view, which the PR-4-era stripper here got wrong.

Exit 0 when clean; exit 1 with file:line findings otherwise. Pure
stdlib, no third-party deps; wired into ctest as the `lint` test and
into CI's analyze job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.source import (  # noqa: E402
    ALL_CXX_DIRS, REPO, SourceFile, load_sources)

# Files that legitimately own raw memory: arena/node allocators whose
# whole point is manual lifetime management.
NAKED_NEW_WHITELIST = {
    "src/index/bplus_tree.h",  # B+ tree node arena (documented there)
}

# The one place raw std synchronization types may appear: the annotated
# wrappers themselves.
RAW_SYNC_WHITELIST = {
    "src/common/mutex.h",
}

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|timed_mutex|recursive_mutex"
    r"|condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock)\b"
)

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:paleo::)?(?:Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*(?:;|ACQUIRED_)"
)

NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new T`, not `->New(`
DELETE_RE = re.compile(r"(?<![\w.])delete\b(?!\s*\()")

# Matched against the strings-kept view as ONE text, not per line:
# real registration calls wrap between the '(' and the name literal,
# which a per-line scan silently never matched.
FIND_OR_CREATE_RE = re.compile(
    r"FindOrCreate(Counter|Gauge|Histogram)\s*\(\s*\"([^\"]*)\""
)

START_SPAN_RE = re.compile(r"\bStartSpan\s*\(")
SPAN_ASSIGN_RE = re.compile(
    r"([A-Za-z_]\w*)\s*=\s*(?:\w+(?:->|\.))?StartSpan\s*\("
)

CONTRACT_RE = re.compile(r"thread[- ]?saf", re.IGNORECASE)

FAULT_POINT_RE = re.compile(r'PALEO_FAULT_POINT\(\s*"([^"]*)"\s*\)')
# Dotted kebab-case with at least two segments: "subsystem.stage" or
# deeper, each segment [a-z0-9] runs joined by single dashes.
FAULT_NAME_RE = re.compile(
    r"^[a-z0-9]+(?:-[a-z0-9]+)*(?:\.[a-z0-9]+(?:-[a-z0-9]+)*)+$"
)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, src: SourceFile, line: int, rule: str,
               msg: str) -> None:
        self.findings.append(f"{src.rel}:{line}: [{rule}] {msg}")

    # ---- rules ----

    def check_raw_sync(self, src: SourceFile) -> None:
        if src.rel in RAW_SYNC_WHITELIST:
            return
        for lineno, line in enumerate(src.code_lines, 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                self.report(
                    src, lineno, "raw-sync",
                    f"std::{m.group(1)} is invisible to the thread-safety "
                    "analysis; use paleo::Mutex / MutexLock / CondVar "
                    "(common/mutex.h)")

    def check_guarded_by(self, src: SourceFile) -> None:
        mutexes: dict[str, int] = {}
        for lineno, line in enumerate(src.code_lines, 1):
            m = MUTEX_MEMBER_RE.match(line)
            if m:
                mutexes[m.group(1)] = lineno
        for name, lineno in mutexes.items():
            if not re.search(
                    r"GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
                    src.code):
                self.report(
                    src, lineno, "guarded-by",
                    f"mutex member '{name}' has no GUARDED_BY({name}) "
                    "field; declare what it protects (or delete it)")

    def check_naked_new(self, src: SourceFile) -> None:
        if src.rel in NAKED_NEW_WHITELIST:
            return
        for lineno, line in enumerate(src.code_lines, 1):
            # Preprocessor lines are not expressions (`#include <new>`).
            if line.lstrip().startswith("#"):
                continue
            # `= delete` / `= default` declare deleted/defaulted special
            # members; they are not memory management.
            line = re.sub(r"=\s*(?:delete|default)\b", "", line)
            if NEW_RE.search(line) or DELETE_RE.search(line):
                self.report(
                    src, lineno, "naked-new",
                    "naked new/delete outside an arena; use "
                    "std::make_unique / make_shared or a container "
                    "(whitelist: tools/paleo_lint.py)")

    # Prometheus suffix conventions: the unit/kind suffix of a family
    # name pins its instrument kind (see src/paleo/pipeline_metrics.h).
    SUFFIX_KINDS = {"_total": "Counter", "_ms": "Histogram",
                    "_bytes": "Gauge"}

    # Load-bearing series that dashboards and the bench harness key on:
    # each must stay registered somewhere in src/. Renaming or dropping
    # one silently zeroes every consumer, so removal must be deliberate
    # (update this list together with the naming-scheme doc in
    # src/paleo/pipeline_metrics.h).
    REQUIRED_SERIES = (
        "paleo_runs_total",
        "paleo_executor_queries_total",
        "paleo_executor_rows_scanned_total",
        "paleo_cache_hits_total",
        "paleo_cache_misses_total",
        "paleo_conjunction_cache_hits_total",
        "paleo_conjunction_cache_misses_total",
        "paleo_validations_refuted_early_total",
        "paleo_rows_saved_by_threshold_total",
        "paleo_degraded_runs_total",
    )

    def collect_metrics(self, src: SourceFile,
                        kinds: dict[str, tuple[str, str, int]]) -> None:
        # Whole-text match on the strings-kept view: registration calls
        # routinely break the line between FindOrCreate* and the name.
        for m in FIND_OR_CREATE_RE.finditer(src.strings):
            kind, name = m.group(1), m.group(2)
            lineno = src.strings.count("\n", 0, m.start()) + 1
            if not name.startswith("paleo_"):
                self.report(
                    src, lineno, "metric-names",
                    f"metric '{name}' must be paleo_*-prefixed")
            for suffix, want in self.SUFFIX_KINDS.items():
                if name.endswith(suffix) and kind != want:
                    self.report(
                        src, lineno, "metric-names",
                        f"metric '{name}' ends in {suffix} so it "
                        f"must be a {want}, not a {kind}")
            seen = kinds.get(name)
            if seen is None:
                kinds[name] = (kind, src.rel, lineno)
            elif seen[0] != kind:
                self.report(
                    src, lineno, "metric-names",
                    f"metric '{name}' registered as {kind} here but "
                    f"as {seen[0]} at {seen[1]}:{seen[2]}")

    def check_span_balance(self, src: SourceFile) -> None:
        if src.rel.startswith("src/obs/"):
            return  # the Trace implementation itself
        for lineno, line in enumerate(src.code_lines, 1):
            if not START_SPAN_RE.search(line):
                continue
            # RAII form: the ScopedSpan ctor calls StartSpan and ends the
            # span on every exit path.
            if "ScopedSpan" in line:
                continue
            m = SPAN_ASSIGN_RE.search(line)
            if m is None:
                self.report(
                    src, lineno, "span-balance",
                    "StartSpan result must be owned by an obs::ScopedSpan "
                    "or stored in a named span id")
                continue
            var = m.group(1)
            if not re.search(
                    r"EndSpan\(\s*" + re.escape(var) + r"\s*\)",
                    src.code):
                self.report(
                    src, lineno, "span-balance",
                    f"span id '{var}' from StartSpan has no matching "
                    f"EndSpan({var}) in this file; spans must end on all "
                    "exit paths")

    def collect_fault_points(self, src: SourceFile,
                             sites: dict[str, tuple[str, int]]) -> None:
        # Fault-point names live inside string literals, so this rule
        # scans the comment-stripped but strings-kept view.
        for lineno, line in enumerate(src.strings.splitlines(), 1):
            for m in FAULT_POINT_RE.finditer(line):
                name = m.group(1)
                if not FAULT_NAME_RE.match(name):
                    self.report(
                        src, lineno, "fault-points",
                        f"fault point '{name}' must be dotted kebab-case "
                        "with >= 2 segments, e.g. "
                        "'request-queue.pop.wait'")
                seen = sites.get(name)
                if seen is None:
                    sites[name] = (src.rel, lineno)
                else:
                    self.report(
                        src, lineno, "fault-points",
                        f"fault point '{name}' already registered at "
                        f"{seen[0]}:{seen[1]}; each "
                        "name maps to exactly one site")

    # Executor scan calls must pass an ExecContext. Member-call syntax
    # only (`.Execute(` / `->Execute(`) so declarations and the
    # Executor::... definitions themselves don't match. The ExecContext
    # overloads have a fixed arity (Execute: 3, ExecuteOnRows: 4,
    # CountMatching: 3) with the context last; anything shorter — or an
    # exact-arity call whose final argument is clearly not a context —
    # is the deleted positional shape. The deprecation grace period
    # ended in PR 9: this is a hard ban across src/, tests/, bench/,
    # and examples/.
    EXEC_CALL_RE = re.compile(
        r"(?:\.|->)\s*(ExecuteOnRows|Execute|CountMatching)\s*\(")
    EXEC_CTX_ARITY = {"Execute": 3, "ExecuteOnRows": 4, "CountMatching": 3}
    CTX_ARG_RE = re.compile(r"ExecContext|ctx|context", re.IGNORECASE)

    @staticmethod
    def split_top_level_args(code: str, open_idx: int) -> list[str] | None:
        """Splits the argument list of the call whose '(' is at
        `open_idx` on top-level commas; None if unbalanced (e.g. the
        call spans a stripped region)."""
        depth, start, args = 0, open_idx + 1, []
        for i in range(open_idx, len(code)):
            ch = code[i]
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
                if depth == 0:
                    args.append(code[start:i])
                    stripped = [a.strip() for a in args]
                    return [] if stripped == [""] else stripped
            elif ch == "," and depth == 1:
                args.append(code[start:i])
                start = i + 1
        return None

    def check_exec_context(self, src: SourceFile) -> None:
        for m in self.EXEC_CALL_RE.finditer(src.code):
            name = m.group(1)
            args = self.split_top_level_args(src.code, m.end() - 1)
            if args is None:
                continue
            lineno = src.lineno_at(m.start())
            want = self.EXEC_CTX_ARITY[name]
            banned = (
                len(args) != want
                or not self.CTX_ARG_RE.search(args[-1]))
            if banned:
                self.report(
                    src, lineno, "exec-context",
                    f"{name} called with the DELETED positional overload "
                    "shape; pass one ExecContext "
                    "(engine/exec_context.h) as the final argument")

    # Raw Table pointers (members, parameters, locals) in the serving
    # layer bypass snapshot pinning; the service must only reach the
    # table through a pinned TableSnapshot.
    TABLE_PTR_RE = re.compile(r"\b(?:const\s+)?Table\s*\*")

    def check_service_table_ptr(self, src: SourceFile) -> None:
        if not src.rel.startswith("src/service/"):
            return
        for lineno, line in enumerate(src.code_lines, 1):
            if self.TABLE_PTR_RE.search(line):
                self.report(
                    src, lineno, "service-table-ptr",
                    "raw Table* in the serving layer; pin a "
                    "shared_ptr<const TableSnapshot> from the "
                    "TableCatalog instead (snapshot isolation)")

    def check_contract_docs(self, src: SourceFile) -> None:
        if not CONTRACT_RE.search(src.raw):
            self.report(
                src, 1, "contract-docs",
                "public header must document its thread-safety contract "
                "(e.g. 'Thread-safe: ...' or 'NOT thread-safe: ...')")

    # ---- driver ----

    def run(self) -> int:
        src_sources = load_sources(REPO, dirs=("src",))
        other_sources = load_sources(
            REPO, dirs=tuple(d for d in ALL_CXX_DIRS if d != "src"))
        metric_kinds: dict[str, tuple[str, str, int]] = {}
        fault_sites: dict[str, tuple[str, int]] = {}
        for src in src_sources:
            self.check_raw_sync(src)
            self.check_guarded_by(src)
            self.check_naked_new(src)
            self.collect_metrics(src, metric_kinds)
            self.check_exec_context(src)
            self.check_service_table_ptr(src)
            self.check_span_balance(src)
            self.collect_fault_points(src, fault_sites)

        # Required-series audit (see REQUIRED_SERIES): every
        # load-bearing family must still be registered somewhere.
        for name in self.REQUIRED_SERIES:
            if name not in metric_kinds:
                anchor = next(
                    (s for s in src_sources
                     if s.rel == "src/paleo/pipeline_metrics.cc"),
                    src_sources[0])
                self.report(
                    anchor, 1, "metric-names",
                    f"required series '{name}' is no longer registered "
                    "anywhere in src/; dashboards key on it (remove it "
                    "from REQUIRED_SERIES only with the consumers)")

        # Tree-wide hard ban: tests, benches, and examples must use the
        # ExecContext call shape too (the positional overloads no longer
        # exist; this catches the shape before the compiler's
        # no-matching-overload error does, with a better message).
        for src in other_sources:
            self.check_exec_context(src)

        for src in src_sources:
            if (src.rel.startswith(("src/paleo/", "src/service/"))
                    and src.rel.endswith(".h")):
                self.check_contract_docs(src)

        if self.findings:
            print(f"paleo_lint: {len(self.findings)} finding(s):\n")
            for f in self.findings:
                print("  " + f)
            print("\npaleo_lint: FAILED")
            return 1
        print(f"paleo_lint: OK — "
              f"{len(src_sources) + len(other_sources)} files clean.")
        return 0


if __name__ == "__main__":
    sys.exit(Linter().run())
