#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party
# translation unit in the compilation database. Zero findings required:
# any warning is promoted to an error (WarningsAsErrors: '*') and fails
# this script.
#
# Usage:
#   tools/run_clang_tidy.sh [build_dir]
#
#   build_dir   directory holding compile_commands.json; defaults to
#               build-analyze, then build (first one that exists).
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: first of clang-tidy,
#               clang-tidy-{19..14} on PATH).
#   TIDY_JOBS   parallelism (default: nproc).
#
# Containers without a clang-tidy binary (the check needs the Clang
# frontend; it cannot be stubbed with GCC) SKIP with exit 0 and a loud
# notice so local runs of the analyze recipe do not hard-fail — CI's
# analyze job installs clang-tidy and runs the real check.

set -u -o pipefail

cd "$(dirname "$0")/.."

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "$CLANG_TIDY" && return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    command -v "$candidate" && return 0
  done
  return 1
}

TIDY="$(find_clang_tidy)" || {
  echo "run_clang_tidy.sh: SKIPPED — no clang-tidy on PATH (set CLANG_TIDY" >&2
  echo "or install clang-tidy); CI's analyze job runs the real check." >&2
  exit 0
}

BUILD_DIR="${1:-}"
if [[ -z "$BUILD_DIR" ]]; then
  for d in build-analyze build; do
    [[ -f "$d/compile_commands.json" ]] && BUILD_DIR="$d" && break
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: no compile_commands.json found; configure first:" >&2
  echo "  cmake -B build-analyze -S . -DPALEO_ANALYZE=ON" >&2
  exit 1
fi

# Every first-party TU; headers are covered via HeaderFilterRegex.
mapfile -t SOURCES < <(find src tests bench examples \
    \( -name '*.cc' -o -name '*.cpp' \) | sort)
echo "run_clang_tidy.sh: $TIDY over ${#SOURCES[@]} TUs ($BUILD_DIR)"

JOBS="${TIDY_JOBS:-$(nproc)}"
FAILED=0
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet || FAILED=1

if [[ "$FAILED" -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED — findings above must be fixed (the" >&2
  echo "baseline is zero warnings; see .clang-tidy for the check set)." >&2
  exit 1
fi
echo "run_clang_tidy.sh: OK — zero findings."
